/**
 * @file
 * Exhaustive latency accounting and bottleneck attribution.
 *
 * Every queue/server on the request path (core fill/WC/store buffers,
 * the cache hierarchy, DRAM channels, the UPI link, the CXL link
 * directions, the CXL controller's credit gate / ingress trackers /
 * back-end / egress pipeline, and the DSA) is wrapped in an
 * AccountedStation that accumulates -- for *every* request, no
 * sampling -- a queueing-delay vs service-time split, server busy
 * time, and a time-weighted occupancy integral. An AttributionBoard
 * owns one station per StationId plus an end-to-end bracket over
 * demand reads, so a sweep point can be rolled up into a per-component
 * latency stack whose components sum exactly (in integer ticks) to
 * the measured end-to-end latency, with a non-negative residual
 * "other" bucket for unattributed fixed costs.
 *
 * Contract (shared with the RAS/QoS/flight-recorder layers): off by
 * default -- a Machine built without `obs.attribution` constructs no
 * board and every instrumentation site is a single null-pointer test;
 * enabling it never schedules events or changes timing, so simulated
 * results are bit-identical either way; snapshots merge exactly and
 * associatively (integer sums only), so `--jobs` parallel sweeps are
 * deterministic.
 *
 * Two invariants are built in as self-tests:
 *  - exact decomposition: sum of per-station stack contributions
 *    never exceeds the bracketed end-to-end total (residual >= 0),
 *    and total == sum(components) + residual exactly, in ticks;
 *  - Little's law: per station, avg occupancy (occupancy integral /
 *    elapsed) equals throughput x avg residency within tolerance.
 */

#ifndef CXLMEMO_SIM_ATTRIBUTION_HH
#define CXLMEMO_SIM_ATTRIBUTION_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace cxlmemo
{

/** Stations on the request path, in upstream-to-downstream order. */
enum class StationId : std::uint8_t
{
    CoreLfb,    //!< core LFB/WC/store-buffer block time (queue only)
    Cache,      //!< cache hierarchy: hit service, MSHR wait, dispatch
    Dram,       //!< host DDR5 channels (local + remote socket)
    Upi,        //!< UPI hop to the remote socket
    CxlM2s,     //!< CXL down-link flit serialization (M2S)
    CxlCredit,  //!< M2S credit-wait / posted-write gate at the host
    CxlIngress, //!< controller ingress pipe + read-tracker/write-buffer
    CxlBackend, //!< device-side DRAM channel(s)
    CxlEgress,  //!< controller egress pipeline
    CxlS2m,     //!< CXL up-link flit serialization (S2M)
    Dsa,        //!< DSA work queue + engines
    NumStations,
};

constexpr std::size_t numStations =
    static_cast<std::size_t>(StationId::NumStations);

/** Short dotted station name used in reports and CSV columns. */
const char *stationName(StationId id);

/** Same name with '.' replaced by '_' (CSV column fragments). */
std::string stationColumn(StationId id);

/**
 * One queue/server pair on the request path. All mutators are O(1)
 * integer arithmetic; no allocation, no event scheduling.
 *
 * Sites with real event-time transitions bracket residency with
 * enter()/exitNow() (the occupancy integral is then an independent
 * measurement, making the Little's-law check meaningful); analytic
 * sites whose wait/service split is computed in one shot (link
 * serialization against a free-at horizon, fixed pipeline delays)
 * use passThrough(), which credits the occupancy integral with the
 * residency sum (for which Little's law is an identity).
 */
struct AccountedStation
{
    /** Parallel servers (channels, engines, buffer entries); the
     *  denominator of the utilization figure. */
    std::uint32_t servers = 1;

    /** True for finite-buffer stations (credit gates, trackers) whose
     *  utilization is occupancy-based rather than busy-time-based. */
    bool buffer = false;

    /* ---- accumulators over all traffic (integer ticks) ---- */
    std::uint64_t enters = 0;
    std::uint64_t exits = 0;
    std::uint64_t queueTicks = 0;   //!< total time spent waiting
    std::uint64_t serviceTicks = 0; //!< total time spent in service
    std::uint64_t busyTicks = 0;    //!< server-busy integral
    std::uint64_t occIntegral = 0;  //!< occupancy x time integral

    /* ---- contributions of bracketed (demand-read) requests ---- */
    std::uint64_t stackQueueTicks = 0;
    std::uint64_t stackServiceTicks = 0;

    /* ---- live state ---- */
    std::uint32_t occupancy = 0;
    Tick lastOcc = 0;

    /** Latest absolute end of any accounted interval. The board's
     *  snapshot uses the maximum across stations as the horizon that
     *  bounds in-flight brackets, which is what makes the stack <=
     *  total invariant hold even mid-flight (an accounted interval
     *  may end after the snapshot tick: scheduled dispatches, local
     *  core clocks running ahead of the event queue). */
    Tick intervalEnd = 0;

    /** Advance the occupancy integral to @p now. Transitions driven
     *  by per-thread local clocks can arrive slightly out of order
     *  across threads; a stale @p now is a no-op, never a rollback. */
    void
    occTo(Tick now)
    {
        if (now <= lastOcc)
            return;
        occIntegral += std::uint64_t(occupancy) * (now - lastOcc);
        lastOcc = now;
    }

    /** A request arrived at the station (real event time). */
    void
    enter(Tick now)
    {
        occTo(now);
        ++occupancy;
        ++enters;
    }

    /** A request left the station (real event time); pair with
     *  account() for its queue/service split. */
    void
    exitNow(Tick now)
    {
        occTo(now);
        if (occupancy > 0)
            --occupancy;
        ++exits;
    }

    /**
     * Record a request's queue/service split.
     *
     * @p busy is the server-occupancy portion of @p service: equal to
     * it for a genuinely serial resource (a DRAM data bus, a DSA
     * engine, link serialization), less for stages whose latency is
     * pipelined and cannot saturate by itself (fixed controller
     * pipelines, wire propagation, the DRAM array access under bank
     * parallelism). Only @p busy feeds the utilization figure.
     * @p stack adds the split to the bracketed latency-stack sums.
     * @p end is the absolute tick the accounted interval ends at; it
     * advances the snapshot horizon bounding in-flight brackets.
     */
    void
    account(Tick queued, Tick service, Tick busy, bool stack, Tick end)
    {
        queueTicks += queued;
        serviceTicks += service;
        busyTicks += busy;
        if (stack) {
            stackQueueTicks += queued;
            stackServiceTicks += service;
        }
        if (end > intervalEnd)
            intervalEnd = end;
    }

    /** One-shot accounting for analytic sites: enter + exit + split
     *  in a single call, occupancy integral credited by residency. */
    void
    passThrough(Tick queued, Tick service, Tick busy, bool stack,
                Tick end)
    {
        ++enters;
        ++exits;
        occIntegral += queued + service;
        account(queued, service, busy, stack, end);
    }

    /** Zero the accumulators (not the live occupancy) and restart the
     *  occupancy integral at @p now. */
    void reset(Tick now);
};

/** Immutable per-station roll-up inside an AttribSnapshot. */
struct StationSnap
{
    std::uint32_t servers = 1;
    bool buffer = false;
    std::uint64_t enters = 0;
    std::uint64_t exits = 0;
    std::uint64_t queueTicks = 0;
    std::uint64_t serviceTicks = 0;
    std::uint64_t busyTicks = 0;
    std::uint64_t occIntegral = 0;
    std::uint64_t stackQueueTicks = 0;
    std::uint64_t stackServiceTicks = 0;

    /** Exact, associative merge (integer sums; servers/buffer kept). */
    void merge(const StationSnap &o);
};

/**
 * A sweep point's attribution roll-up: per-station accumulators over
 * a measurement window plus the end-to-end demand-read bracket.
 * Derived figures (utilization, latency stack, Little's-law check,
 * bottleneck verdict) are computed on demand from the integer sums,
 * so merging snapshots and then deriving equals deriving from the
 * merged sums.
 */
struct AttribSnapshot
{
    Tick elapsed = 0;              //!< measurement-window length
    std::uint64_t reqCount = 0;    //!< bracketed demand reads retired
    std::uint64_t totalTicks = 0;  //!< their summed end-to-end latency
    /** Device-level traffic mix (fed by the CXL controller): decides
     *  whether the bottleneck verdict follows the read path or the
     *  posted-write acknowledgement path. */
    std::uint64_t devReads = 0;
    std::uint64_t devWrites = 0;
    std::array<StationSnap, numStations> st{};

    const StationSnap &
    at(StationId id) const
    {
        return st[static_cast<std::size_t>(id)];
    }

    /** Exact, associative merge (elapsed and all sums add). */
    void merge(const AttribSnapshot &o);

    /* ---- latency stack (bracketed demand reads) ---- */

    /** Sum of per-station stack contributions, in ticks. */
    std::uint64_t stackTicks() const;

    /** Residual "other" bucket: totalTicks - stackTicks(). */
    std::uint64_t otherTicks() const;

    /** true iff stackTicks() <= totalTicks (residual >= 0), i.e. the
     *  stack reconstructs the measured total exactly. */
    bool decompositionExact() const;

    double avgTotalNs() const;
    double componentQueueNs(StationId id) const;
    double componentServiceNs(StationId id) const;
    double otherNs() const;

    /* ---- per-station figures (all traffic) ---- */

    double util(StationId id) const;
    double avgOccupancy(StationId id) const;
    /** Completions per nanosecond. */
    double throughputPerNs(StationId id) const;
    double avgResidencyNs(StationId id) const;
    /** Relative |L - lambda*W| deviation (0 when idle). */
    double littleDeviation(StationId id) const;
    /** true iff every active station satisfies Little's law within
     *  @p tol relative deviation. */
    bool littleOk(double tol = 0.05) const;
    /** Queueing share of a station's residency: q / (q + s). */
    double queueShare(StationId id) const;

    /* ---- bottleneck verdict ---- */

    /**
     * Automatic root-cause verdict, in three regimes:
     *
     *  - Posted-write-dominated device traffic (nt-store floods):
     *    writes are acknowledged at the controller ingress buffer and
     *    drain to the back-end off the host-visible path, so the
     *    back-end/egress/S2M stations are excluded and the verdict is
     *    the highest-utilization remaining station -- the full write
     *    buffer, the paper's nt-store overload narrative.
     *  - Read path with a saturated *server* (utilization >= 0.5):
     *    the highest-utilization non-buffer station wins, near-ties
     *    (within 0.02) resolved downstream. A full upstream buffer is
     *    the *symptom* of a saturated downstream server, so buffers
     *    never outrank a busy server.
     *  - Nothing saturated (latency-bound): the station contributing
     *    the largest share of the demand-read latency stack.
     */
    StationId bottleneck() const;

    /** e.g. "bottleneck=cxl.backend util=0.97 queue_share=0.81". */
    std::string verdict() const;

    /* ---- rendering ---- */

    /** Multi-line "attrib: ..." stat lines for Machine::statsString. */
    std::string statLines() const;

    /** Human-readable per-point breakdown table (memo report). */
    std::string table() const;

    /** Compact per-station occupancy/utilization dump for the
     *  watchdog post-mortem. */
    std::string postMortem() const;
};

/**
 * Per-machine registry of stations plus the end-to-end bracket.
 * Constructed only when attribution is enabled; every instrumentation
 * site holds a pointer that is null otherwise.
 */
class AttributionBoard
{
  public:
    explicit AttributionBoard(Tick now = 0);

    AccountedStation &
    station(StationId id)
    {
        return st_[static_cast<std::size_t>(id)];
    }

    const AccountedStation &
    station(StationId id) const
    {
        return st_[static_cast<std::size_t>(id)];
    }

    /** Configure a station's utilization denominator. */
    void setServers(StationId id, std::uint32_t servers,
                    bool buffer = false);

    /** A bracketed demand read issued at @p t0. Every begin must be
     *  matched by completeRequest(t0, ...): in-flight brackets are
     *  charged into the snapshot up to the accounting horizon, which
     *  is what keeps the latency stack bounded by the measured total
     *  even while requests are mid-flight. */
    void
    beginRequest(Tick t0)
    {
        ++liveCount_;
        liveStartSum_ += t0;
    }

    /** The bracketed demand read begun at @p t0 retired at @p t. */
    void
    completeRequest(Tick t0, Tick t)
    {
        --liveCount_;
        liveStartSum_ -= t0;
        ++reqCount_;
        totalTicks_ += t - t0;
    }

    /** A request arrived at the (CXL) device controller; feeds the
     *  read/write traffic mix the bottleneck verdict keys on. */
    void
    noteDeviceOp(bool write)
    {
        if (write)
            ++devWrites_;
        else
            ++devReads_;
    }

    /** Restart the measurement window at @p now (Machine::resetStats). */
    void beginWindow(Tick now);

    /** Roll up the window ending at @p now. */
    AttribSnapshot snapshot(Tick now) const;

    Tick windowStart() const { return windowStart_; }

  private:
    std::array<AccountedStation, numStations> st_{};
    std::uint64_t reqCount_ = 0;
    std::uint64_t totalTicks_ = 0;
    std::uint64_t liveCount_ = 0;    //!< brackets begun, not retired
    std::uint64_t liveStartSum_ = 0; //!< sum of their start ticks
    std::uint64_t devReads_ = 0;
    std::uint64_t devWrites_ = 0;
    Tick windowStart_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_ATTRIBUTION_HH
