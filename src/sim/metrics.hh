/**
 * @file
 * Interval metrics: a pull-model registry of named counters and
 * gauges plus a sim-time sampler that snapshots them periodically
 * into a long-format CSV timeline.
 *
 * Components register sources once (a lambda reading their existing
 * stats -- no new accounting on the hot path):
 *
 *  - **counter**: a monotone total (bytes moved, requests retired,
 *    stall ticks). Each snapshot emits the *delta* since the previous
 *    one, and the final flush emits the grand total, so the timeline
 *    is conservative by construction: sum(deltas) == total, exactly,
 *    in u64 arithmetic. Tests and CI assert this.
 *  - **gauge**: an instantaneous level (queue depth, buffer
 *    occupancy, DevLoad, credit-wait depth); sampled as-is.
 *
 * The timeline is a *change log*: zero-delta counter rows and
 * unchanged gauge rows are elided (every gauge still appears at its
 * first sample). Conservation is unaffected -- a zero delta sums to
 * nothing -- and a fleet of mostly-idle per-port fabric counters no
 * longer dominates the sampling cost; readers hold a gauge's last
 * value across silent intervals.
 *
 * CSV schema (long format, one row per metric per snapshot):
 *
 *     time_ns,metric,kind,value
 *
 * with kind in {delta, gauge, total, pctl}. Long format keeps the
 * column set fixed no matter which components exist, so timelines
 * from different configurations concatenate cleanly. "pctl" rows come
 * from registered histograms: each snapshot diffs the cumulative
 * bucket counts against the previous snapshot (an exact u64 delta
 * window) and reports p50/p95/p99/p999 of *that interval's* samples,
 * so a late tail blow-up is visible at the interval it happened, not
 * smeared into the whole-run distribution.
 *
 * The sampler follows the watchdog's scheduling-neutrality rule: its
 * event reschedules itself only while other events are pending, so
 * it never keeps EventQueue::run() from draining; the harness rearms
 * it when starting new work. Disabled (interval 0, the default),
 * nothing is scheduled and behaviour is bit-identical.
 */

#ifndef CXLMEMO_SIM_METRICS_HH
#define CXLMEMO_SIM_METRICS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/histogram.hh"
#include "sim/types.hh"

namespace cxlmemo
{

class MetricsRegistry
{
  public:
    /** Register a monotone counter; @p read returns the current total. */
    void
    addCounter(std::string name, std::function<std::uint64_t()> read)
    {
        counters_.push_back({std::move(name), std::move(read), 0});
    }

    /** Register an instantaneous gauge. */
    void
    addGauge(std::string name, std::function<double()> read)
    {
        gauges_.push_back({std::move(name), std::move(read)});
    }

    /**
     * Register a cumulative latency histogram for windowed percentile
     * rows. Each snapshot subtracts the previous snapshot's bucket
     * counts (delta window, not cumulative) and emits
     * `<name>.p50/.p95/.p99/.p999` rows (kind "pctl") when the window
     * saw samples. Also registers a `<name>.n` counter so the sample
     * stream keeps the timeline's conservation property.
     * @p read may return null while the source does not exist yet.
     * @p scale converts bucket units to the emitted value (histograms
     * that record ticks pass 1/tickPerNs to report ns).
     */
    void addHistogram(std::string name,
                      std::function<const LatencyHistogram *()> read,
                      double scale = 1.0);

    /** Emit one delta row per counter and one gauge row per gauge. */
    void snapshot(Tick now);

    /**
     * Final accounting at end of run: a last delta snapshot (so no
     * tail activity is lost) followed by one total row per counter.
     * Idempotent per run; reset() starts a new one.
     */
    void flush(Tick now);

    /** Accumulated CSV rows (no header). */
    const std::string &rows() const { return rows_; }

    static const char *csvHeader() { return "time_ns,metric,kind,value"; }

    std::size_t counterCount() const { return counters_.size(); }
    std::size_t gaugeCount() const { return gauges_.size(); }
    std::size_t histogramCount() const { return hists_.size(); }
    std::uint64_t snapshots() const { return snapshots_; }

    /** Clear rows and re-baseline counters (between sweep points). */
    void reset();

  private:
    struct Counter
    {
        std::string name;
        std::function<std::uint64_t()> read;
        std::uint64_t last = 0;
    };

    struct Gauge
    {
        std::string name;
        std::function<double()> read;
        double last = 0.0;
        bool emitted = false;
    };

    struct Hist
    {
        std::string name;
        std::function<const LatencyHistogram *()> read;
        double scale = 1.0;
        /** Previous snapshot's bucket counts; the delta window is
         *  cur - last, exact in u64 (counts are monotone). */
        std::array<std::uint64_t, LatencyHistogram::kBuckets> last{};
        std::uint64_t lastCount = 0;
    };

    void appendRow(Tick now, const std::string &name, const char *kind,
                   std::uint64_t value);
    void appendRow(Tick now, const std::string &name, const char *kind,
                   double value);

    void snapshotHists(Tick now);

    std::vector<Counter> counters_;
    std::vector<Gauge> gauges_;
    std::vector<Hist> hists_;
    std::string rows_;
    std::uint64_t snapshots_ = 0;
    bool flushed_ = false;
};

/**
 * Periodic sim-time driver for a MetricsRegistry. arm() schedules the
 * next snapshot; the event re-arms itself only while the event queue
 * has other work, standing down at quiesce (rearm via
 * Machine::rearmWatchdog(), which the harness already calls when
 * starting each run phase).
 */
class MetricsSampler
{
  public:
    MetricsSampler(EventQueue &eq, MetricsRegistry &registry,
                   Tick interval)
        : eq_(eq), registry_(registry), interval_(interval)
    {
    }

    void
    arm()
    {
        if (armed_ || interval_ == 0)
            return;
        armed_ = true;
        if (onSchedule_)
            onSchedule_(eq_.curTick() + interval_);
        eq_.scheduleIn(interval_, [this] { sample(); });
    }

    bool armed() const { return armed_; }
    Tick interval() const { return interval_; }

    /**
     * Parallel-engine hooks. A snapshot reads counters owned by other
     * simulation domains, so it must run at a globally quiesced tick:
     * @p onSchedule is told every absolute snapshot tick (the Machine
     * registers it as an executor fence) and @p pending replaces
     * eq.pending() as the keep-alive test (the local domain queue may
     * be empty while other domains still carry the work).
     */
    void
    setParallelHooks(std::function<std::size_t()> pending,
                     std::function<void(Tick)> onSchedule)
    {
        pendingHook_ = std::move(pending);
        onSchedule_ = std::move(onSchedule);
    }

  private:
    void
    sample()
    {
        armed_ = false;
        registry_.snapshot(eq_.curTick());
        const std::size_t left =
            pendingHook_ ? pendingHook_() : eq_.pending();
        if (left > 0)
            arm();
    }

    EventQueue &eq_;
    MetricsRegistry &registry_;
    Tick interval_;
    bool armed_ = false;
    std::function<std::size_t()> pendingHook_;
    std::function<void(Tick)> onSchedule_;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_METRICS_HH
