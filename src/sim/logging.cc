#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>

namespace cxlmemo
{
namespace logging_detail
{

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const std::string &msg)
{
    std::fprintf(stderr, "panic: assertion '%s' failed: %s\n  @ %s:%d\n",
                 cond, msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace logging_detail
} // namespace cxlmemo
