/**
 * @file
 * Lightweight statistics containers used by every component: running
 * scalar summaries, exact-percentile sample recorders for latency
 * distributions, and a bandwidth meter.
 */

#ifndef CXLMEMO_SIM_STATS_HH
#define CXLMEMO_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/**
 * Running mean/variance/min/max/count without storing samples
 * (Welford's online update). merge() combines two independently
 * accumulated instances with the parallel-algorithm formula
 * (Chan et al.), so SweepRunner workers can each keep their own
 * RunningStats and fold them afterwards: count/min/max combine
 * exactly, mean/variance to floating-point accuracy.
 */
class RunningStats
{
  public:
    void
    record(double v)
    {
        sum_ += v;
        ++count_;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
        const double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance (0 for fewer than two samples). */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /** Fold @p o into this as if every sample had been recorded here. */
    void
    merge(const RunningStats &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0) {
            *this = o;
            return;
        }
        const auto na = static_cast<double>(count_);
        const auto nb = static_cast<double>(o.count_);
        const double delta = o.mean_ - mean_;
        const double n = na + nb;
        m2_ += o.m2_ + delta * delta * na * nb / n;
        mean_ = (na * mean_ + nb * o.mean_) / n;
        sum_ += o.sum_;
        count_ += o.count_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
        mean_ = 0.0;
        m2_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0; //!< Welford running mean (variance tracking)
    double m2_ = 0.0;   //!< sum of squared deviations from the mean
};

/**
 * Stores every sample for exact percentile queries. Experiments record
 * at most a few hundred thousand samples, so exact storage is cheaper
 * than maintaining a sketch and avoids approximation arguments when
 * comparing tail latencies against the paper.
 */
class SampleSeries
{
  public:
    void record(double v) { samples_.push_back(v); }

    std::uint64_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double
    mean() const
    {
        if (samples_.empty())
            return 0.0;
        double s = 0.0;
        for (double v : samples_)
            s += v;
        return s / static_cast<double>(samples_.size());
    }

    /**
     * Exact percentile with nearest-rank semantics.
     * @param p percentile in [0, 100]
     */
    double
    percentile(double p) const
    {
        // An empty series reports 0 rather than asserting: stats and
        // CSV emitters run unconditionally, including for runs that
        // retired no requests at all.
        if (samples_.empty())
            return 0.0;
        CXLMEMO_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
        std::vector<double> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        if (p <= 0.0)
            return sorted.front();
        auto rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
        if (rank == 0)
            rank = 1;
        return sorted[std::min(rank - 1, sorted.size() - 1)];
    }

    double p50() const { return percentile(50.0); }
    double p99() const { return percentile(99.0); }

    double
    max() const
    {
        if (samples_.empty())
            return 0.0;
        return *std::max_element(samples_.begin(), samples_.end());
    }

    void reset() { samples_.clear(); }

  private:
    std::vector<double> samples_;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_STATS_HH
