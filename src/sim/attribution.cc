#include "sim/attribution.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "sim/statmerge.hh"

namespace cxlmemo
{

namespace
{

const char *const stationNames[numStations] = {
    "core.lfb",    "cache",       "dram",       "upi",
    "cxl.m2s",     "cxl.credit",  "cxl.ingress", "cxl.backend",
    "cxl.egress",  "cxl.s2m",     "dsa",
};

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

StationId
idAt(std::size_t i)
{
    return static_cast<StationId>(i);
}

} // namespace

const char *
stationName(StationId id)
{
    return stationNames[static_cast<std::size_t>(id)];
}

std::string
stationColumn(StationId id)
{
    std::string s = stationName(id);
    std::replace(s.begin(), s.end(), '.', '_');
    return s;
}

void
AccountedStation::reset(Tick now)
{
    enters = 0;
    exits = 0;
    queueTicks = 0;
    serviceTicks = 0;
    busyTicks = 0;
    occIntegral = 0;
    stackQueueTicks = 0;
    stackServiceTicks = 0;
    lastOcc = now;
    intervalEnd = now;
}

void
StationSnap::merge(const StationSnap &o)
{
    mergeCounters(*this, o, &StationSnap::enters, &StationSnap::exits,
                  &StationSnap::queueTicks, &StationSnap::serviceTicks,
                  &StationSnap::busyTicks, &StationSnap::occIntegral,
                  &StationSnap::stackQueueTicks,
                  &StationSnap::stackServiceTicks);
    servers = std::max(servers, o.servers);
    buffer = buffer || o.buffer;
}

void
AttribSnapshot::merge(const AttribSnapshot &o)
{
    elapsed += o.elapsed;
    reqCount += o.reqCount;
    totalTicks += o.totalTicks;
    devReads += o.devReads;
    devWrites += o.devWrites;
    for (std::size_t i = 0; i < numStations; ++i)
        st[i].merge(o.st[i]);
}

std::uint64_t
AttribSnapshot::stackTicks() const
{
    std::uint64_t sum = 0;
    for (const auto &s : st)
        sum += s.stackQueueTicks + s.stackServiceTicks;
    return sum;
}

std::uint64_t
AttribSnapshot::otherTicks() const
{
    const std::uint64_t stack = stackTicks();
    return totalTicks >= stack ? totalTicks - stack : 0;
}

bool
AttribSnapshot::decompositionExact() const
{
    return stackTicks() <= totalTicks;
}

double
AttribSnapshot::avgTotalNs() const
{
    if (reqCount == 0)
        return 0.0;
    return nsFromTicks(totalTicks) / static_cast<double>(reqCount);
}

double
AttribSnapshot::componentQueueNs(StationId id) const
{
    if (reqCount == 0)
        return 0.0;
    return nsFromTicks(at(id).stackQueueTicks)
           / static_cast<double>(reqCount);
}

double
AttribSnapshot::componentServiceNs(StationId id) const
{
    if (reqCount == 0)
        return 0.0;
    return nsFromTicks(at(id).stackServiceTicks)
           / static_cast<double>(reqCount);
}

double
AttribSnapshot::otherNs() const
{
    if (reqCount == 0)
        return 0.0;
    return nsFromTicks(otherTicks()) / static_cast<double>(reqCount);
}

double
AttribSnapshot::util(StationId id) const
{
    const StationSnap &s = at(id);
    if (elapsed == 0 || s.servers == 0)
        return 0.0;
    const std::uint64_t numer = s.buffer ? s.occIntegral : s.busyTicks;
    const double u = static_cast<double>(numer)
                     / (static_cast<double>(elapsed)
                        * static_cast<double>(s.servers));
    return std::min(u, 1.0);
}

double
AttribSnapshot::avgOccupancy(StationId id) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(at(id).occIntegral)
           / static_cast<double>(elapsed);
}

double
AttribSnapshot::throughputPerNs(StationId id) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(at(id).exits) / nsFromTicks(elapsed);
}

double
AttribSnapshot::avgResidencyNs(StationId id) const
{
    const StationSnap &s = at(id);
    if (s.exits == 0)
        return 0.0;
    return nsFromTicks(s.queueTicks + s.serviceTicks)
           / static_cast<double>(s.exits);
}

double
AttribSnapshot::littleDeviation(StationId id) const
{
    const StationSnap &s = at(id);
    if (s.exits == 0 || elapsed == 0)
        return 0.0;
    const double l = avgOccupancy(id);
    const double lw = throughputPerNs(id) * avgResidencyNs(id);
    const double ref = std::max(l, lw);
    if (ref <= 0.0)
        return 0.0;
    return std::abs(l - lw) / ref;
}

bool
AttribSnapshot::littleOk(double tol) const
{
    for (std::size_t i = 0; i < numStations; ++i) {
        // core.lfb occupancy transitions are stamped with per-thread
        // local clocks, which are not mutually monotonic, so its
        // occupancy integral (and hence L = lambda*W) is only
        // approximate there. Its deviation is still reported in the
        // table, just not enforced.
        if (idAt(i) == StationId::CoreLfb)
            continue;
        if (littleDeviation(idAt(i)) > tol)
            return false;
    }
    return true;
}

double
AttribSnapshot::queueShare(StationId id) const
{
    const StationSnap &s = at(id);
    const std::uint64_t resid = s.queueTicks + s.serviceTicks;
    if (resid == 0)
        return 0.0;
    return static_cast<double>(s.queueTicks)
           / static_cast<double>(resid);
}

StationId
AttribSnapshot::bottleneck() const
{
    // Posted-write floods are acknowledged at the controller ingress;
    // the drain to the back-end is off the host-visible path.
    const bool writeHeavy = devWrites > 3 * devReads && devWrites > 0;

    auto active = [this](StationId id) {
        return at(id).exits != 0 || at(id).enters != 0;
    };
    // Highest utilization among active stations passing @p keep;
    // near-ties (within 0.02) go to the more downstream station (enum
    // order): the root cause, not the backed-up symptom.
    auto argmaxUtil = [&](auto keep) {
        StationId best = StationId::CoreLfb;
        double bestUtil = -1.0;
        for (std::size_t i = 0; i < numStations; ++i) {
            const StationId id = idAt(i);
            if (!active(id) || !keep(id))
                continue;
            const double u = util(id);
            if (u >= bestUtil - 0.02) {
                best = id;
                bestUtil = std::max(bestUtil, u);
            }
        }
        return best;
    };

    if (writeHeavy) {
        return argmaxUtil([](StationId id) {
            return id != StationId::CxlBackend
                   && id != StationId::CxlEgress
                   && id != StationId::CxlS2m;
        });
    }

    // Read path: a saturated *server* outranks any full buffer (the
    // buffer fills *because* the server behind it is slow).
    const StationId server =
        argmaxUtil([this](StationId id) { return !at(id).buffer; });
    if (util(server) >= 0.5)
        return server;

    // Nothing saturated: latency-bound. Name the largest stack
    // contributor (fall back to utilization with no bracketed reads).
    if (stackTicks() > 0) {
        StationId best = StationId::CoreLfb;
        std::uint64_t bestTicks = 0;
        for (std::size_t i = 0; i < numStations; ++i) {
            const StationId id = idAt(i);
            const std::uint64_t t =
                at(id).stackQueueTicks + at(id).stackServiceTicks;
            if (t >= bestTicks && t > 0) {
                best = id;
                bestTicks = t;
            }
        }
        return best;
    }
    return argmaxUtil([](StationId) { return true; });
}

std::string
AttribSnapshot::verdict() const
{
    const StationId b = bottleneck();
    return fmt("bottleneck=%s util=%.2f queue_share=%.2f",
               stationName(b), util(b), queueShare(b));
}

std::string
AttribSnapshot::statLines() const
{
    std::string out;
    out += fmt("attrib: window %.1f us, %llu demand reads, "
               "avg total %.1f ns (stack %s, little %s)\n",
               usFromTicks(elapsed),
               static_cast<unsigned long long>(reqCount), avgTotalNs(),
               decompositionExact() ? "exact" : "VIOLATED",
               littleOk() ? "ok" : "VIOLATED");
    for (std::size_t i = 0; i < numStations; ++i) {
        const StationId id = idAt(i);
        const StationSnap &s = at(id);
        if (s.enters == 0 && s.exits == 0)
            continue;
        out += fmt("attrib: %-11s util %.3f  occ %8.2f  "
                   "q %8.1f ns  s %8.1f ns  n %llu\n",
                   stationName(id), util(id), avgOccupancy(id),
                   componentQueueNs(id), componentServiceNs(id),
                   static_cast<unsigned long long>(s.exits));
    }
    out += fmt("attrib: %-11s q %8.1f ns (residual)\n", "other",
               otherNs());
    out += "attrib: " + verdict() + "\n";
    return out;
}

std::string
AttribSnapshot::table() const
{
    std::string out;
    out += fmt("  %-12s %6s %9s %10s %10s %7s %10s\n", "station",
               "util", "avg_occ", "queue_ns", "svc_ns", "share",
               "little_dev");
    const double total = avgTotalNs();
    for (std::size_t i = 0; i < numStations; ++i) {
        const StationId id = idAt(i);
        const StationSnap &s = at(id);
        if (s.enters == 0 && s.exits == 0)
            continue;
        const double q = componentQueueNs(id);
        const double sv = componentServiceNs(id);
        const double share = total > 0.0 ? (q + sv) / total : 0.0;
        out += fmt("  %-12s %6.3f %9.2f %10.1f %10.1f %6.1f%% %10.4f\n",
                   stationName(id), util(id), avgOccupancy(id), q, sv,
                   share * 100.0, littleDeviation(id));
    }
    const double oshare = total > 0.0 ? otherNs() / total : 0.0;
    out += fmt("  %-12s %6s %9s %10s %10.1f %6.1f%%\n", "other", "-",
               "-", "-", otherNs(), oshare * 100.0);
    out += fmt("  %-12s avg %.1f ns over %llu reads  (stack %s, "
               "little's law %s)\n",
               "total", total,
               static_cast<unsigned long long>(reqCount),
               decompositionExact() ? "exact" : "VIOLATED",
               littleOk() ? "ok" : "VIOLATED");
    out += "  " + verdict() + "\n";
    return out;
}

std::string
AttribSnapshot::postMortem() const
{
    std::string out = "attribution at trip time:\n";
    for (std::size_t i = 0; i < numStations; ++i) {
        const StationId id = idAt(i);
        const StationSnap &s = at(id);
        if (s.enters == 0 && s.exits == 0)
            continue;
        out += fmt("  %-11s util %.3f  occ %.2f  in-station %lld  "
                   "q %.1f ns\n",
                   stationName(id), util(id), avgOccupancy(id),
                   static_cast<long long>(s.enters)
                       - static_cast<long long>(s.exits),
                   avgResidencyNs(id) * queueShare(id));
    }
    out += "  " + verdict() + "\n";
    return out;
}

AttributionBoard::AttributionBoard(Tick now) : windowStart_(now)
{
    for (auto &s : st_)
        s.lastOcc = now;
}

void
AttributionBoard::setServers(StationId id, std::uint32_t servers,
                             bool buffer)
{
    AccountedStation &s = station(id);
    s.servers = std::max<std::uint32_t>(servers, 1);
    s.buffer = buffer;
}

void
AttributionBoard::beginWindow(Tick now)
{
    windowStart_ = now;
    reqCount_ = 0;
    totalTicks_ = 0;
    devReads_ = 0;
    devWrites_ = 0;
    // liveCount_/liveStartSum_ deliberately survive: brackets opened
    // before the window retire with their true start, so their stack
    // contributions inside the window stay covered by their totals.
    for (auto &s : st_)
        s.reset(now);
}

AttribSnapshot
AttributionBoard::snapshot(Tick now) const
{
    AttribSnapshot snap;
    snap.elapsed = now >= windowStart_ ? now - windowStart_ : 0;
    snap.reqCount = reqCount_;
    snap.totalTicks = totalTicks_;
    snap.devReads = devReads_;
    snap.devWrites = devWrites_;
    if (liveCount_ > 0) {
        // Charge in-flight brackets up to the accounting horizon: the
        // latest end of any accounted interval (which can lie past
        // @p now -- scheduled dispatches, core-local clocks running
        // ahead). Every live bracket's accounted intervals fit inside
        // [its start, horizon], so stack <= total holds mid-flight.
        Tick horizon = now;
        for (const auto &s : st_)
            horizon = std::max(horizon, s.intervalEnd);
        snap.reqCount += liveCount_;
        snap.totalTicks += liveCount_ * horizon - liveStartSum_;
    }
    for (std::size_t i = 0; i < numStations; ++i) {
        const AccountedStation &s = st_[i];
        StationSnap &o = snap.st[i];
        o.servers = s.servers;
        o.buffer = s.buffer;
        o.enters = s.enters;
        o.exits = s.exits;
        o.queueTicks = s.queueTicks;
        o.serviceTicks = s.serviceTicks;
        o.busyTicks = s.busyTicks;
        o.occIntegral = s.occIntegral;
        if (now > s.lastOcc)
            o.occIntegral +=
                std::uint64_t(s.occupancy) * (now - s.lastOcc);
        o.stackQueueTicks = s.stackQueueTicks;
        o.stackServiceTicks = s.stackServiceTicks;
    }
    return snap;
}

} // namespace cxlmemo
