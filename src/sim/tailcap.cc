#include "sim/tailcap.hh"

#include <algorithm>
#include <cstdio>

namespace cxlmemo
{

const char *
tailRegimeName(TailRegime r)
{
    switch (r) {
      case TailRegime::Local:  return "local";
      case TailRegime::Remote: return "remote";
      case TailRegime::Cxl:    return "cxl";
      case TailRegime::Fabric: return "fabric";
      case TailRegime::NumRegimes: break;
    }
    return "?";
}

bool
tailWorse(const TailSpan &a, const TailSpan &b)
{
    // Latency first (worse == longer), then (tick, seq) tie-breaks so
    // the order is a strict total order over distinct spans: two
    // different spans of one capture can never compare equal, which
    // is what makes the top-K set insertion-order independent.
    const Tick la = a.latency(), lb = b.latency();
    if (la != lb)
        return la > lb;
    if (a.start != b.start)
        return a.start < b.start;
    if (a.id != b.id)
        return a.id < b.id;
    return a.source < b.source;
}

TailRegime
TailCapture::classify(const TraceSpan &span)
{
    bool cxl = false, remote = false;
    for (const StageMark &m : span.marks) {
        if (isFabricStage(m.stage))
            return TailRegime::Fabric;
        switch (m.stage) {
          case TraceStage::CxlM2s:
          case TraceStage::CxlCredit:
          case TraceStage::CxlIngress:
          case TraceStage::CxlEgress:
          case TraceStage::CxlS2m:
            cxl = true;
            break;
          case TraceStage::Upi:
            remote = true;
            break;
          default:
            break;
        }
    }
    if (cxl)
        return TailRegime::Cxl;
    if (remote)
        return TailRegime::Remote;
    return TailRegime::Local;
}

std::vector<TailStage>
TailCapture::stageBreakdown(const TailSpan &s)
{
    std::vector<TailStage> out;
    if (s.marks.empty()) {
        out.push_back({TraceStage::Issue,
                       static_cast<std::int64_t>(s.end)
                           - static_cast<std::int64_t>(s.start)});
        return out;
    }
    out.reserve(s.marks.size() + 1);
    // Telescoping differences: the head gap (if any), each mark to
    // the next, the last mark to span end. Signed, unclamped -- the
    // sum collapses to end - start exactly, which is the whole point.
    const auto head = static_cast<std::int64_t>(s.marks.front().at)
                      - static_cast<std::int64_t>(s.start);
    if (head != 0)
        out.push_back({TraceStage::Issue, head});
    for (std::size_t i = 0; i < s.marks.size(); ++i) {
        const std::int64_t until =
            i + 1 < s.marks.size()
                ? static_cast<std::int64_t>(s.marks[i + 1].at)
                : static_cast<std::int64_t>(s.end);
        out.push_back({s.marks[i].stage,
                       until
                           - static_cast<std::int64_t>(s.marks[i].at)});
    }
    return out;
}

bool
TailCapture::stackExact(const TailSpan &s)
{
    std::int64_t sum = 0;
    for (const TailStage &st : stageBreakdown(s))
        sum += st.ticks;
    return sum == static_cast<std::int64_t>(s.end)
                      - static_cast<std::int64_t>(s.start);
}

void
TailCapture::consider(const TraceSpan &span)
{
    if (k_ == 0)
        return;
    ++considered_;
    TailSpan cand;
    cand.id = span.id;
    cand.source = span.source;
    cand.cmd = span.cmd;
    cand.addr = span.addr;
    cand.start = span.start;
    cand.end = span.end;
    cand.regime = classify(span);
    auto &cls = classes_[static_cast<std::size_t>(cand.regime)];
    if (cls.size() == k_ && !tailWorse(cand, cls.back()))
        return; // not worse than the class floor -- the common case
    cand.marks = span.marks;
    const auto pos = std::lower_bound(
        cls.begin(), cls.end(), cand,
        [](const TailSpan &a, const TailSpan &b) {
            return tailWorse(a, b);
        });
    cls.insert(pos, std::move(cand));
    if (cls.size() > k_)
        cls.pop_back();
}

void
TailCapture::merge(const TailCapture &o)
{
    if (k_ == 0)
        k_ = o.k_;
    considered_ += o.considered_;
    if (o.k_ == 0)
        return;
    for (std::size_t r = 0; r < numTailRegimes; ++r) {
        if (o.classes_[r].empty())
            continue;
        std::vector<TailSpan> merged;
        merged.reserve(classes_[r].size() + o.classes_[r].size());
        std::merge(classes_[r].begin(), classes_[r].end(),
                   o.classes_[r].begin(), o.classes_[r].end(),
                   std::back_inserter(merged),
                   [](const TailSpan &a, const TailSpan &b) {
                       return tailWorse(a, b);
                   });
        if (merged.size() > k_)
            merged.resize(k_);
        classes_[r] = std::move(merged);
    }
}

void
TailCapture::reset()
{
    considered_ = 0;
    for (auto &cls : classes_)
        cls.clear();
}

std::uint64_t
TailCapture::held() const
{
    std::uint64_t n = 0;
    for (const auto &cls : classes_)
        n += cls.size();
    return n;
}

std::vector<const TailSpan *>
TailCapture::worstFirst() const
{
    std::vector<const TailSpan *> out;
    out.reserve(held());
    for (const auto &cls : classes_)
        for (const TailSpan &s : cls)
            out.push_back(&s);
    // stable_sort on a strict total order: ties are impossible within
    // one capture, and cross-capture full ties (merged sweep points)
    // keep their deterministic insertion order.
    std::stable_sort(out.begin(), out.end(),
                     [](const TailSpan *a, const TailSpan *b) {
                         return tailWorse(*a, *b);
                     });
    return out;
}

namespace
{

/** Dominant stage of a span: the largest aggregate positive
 *  contribution, earliest stage on ties. */
TailStage
dominantStage(const TailSpan &s)
{
    std::int64_t perStage[32] = {};
    for (const TailStage &st : TailCapture::stageBreakdown(s))
        perStage[static_cast<std::size_t>(st.stage)] += st.ticks;
    TailStage best{TraceStage::Issue, -1};
    for (std::size_t i = 0; i < 32; ++i) {
        if (perStage[i] > best.ticks) {
            best.stage = static_cast<TraceStage>(i);
            best.ticks = perStage[i];
        }
    }
    return best;
}

} // namespace

TailSummary
TailCapture::summary() const
{
    TailSummary t;
    t.k = k_;
    t.considered = considered_;
    const auto worst = worstFirst();
    t.held = worst.size();
    for (const TailSpan *s : worst)
        t.stackExact = t.stackExact && stackExact(*s);
    if (worst.empty())
        return t;
    const TailSpan &w = *worst.front();
    t.worstNs = nsFromTicks(w.latency());
    const std::size_t kth =
        std::min<std::size_t>(k_ > 0 ? k_ : 1, worst.size()) - 1;
    t.kthNs = nsFromTicks(worst[kth]->latency());
    t.regime = tailRegimeName(w.regime);
    const TailStage dom = dominantStage(w);
    t.stage = traceStageName(dom.stage);
    t.stageNs = static_cast<double>(dom.ticks) / tickPerNs;
    return t;
}

std::string
TailCapture::table() const
{
    std::string out = "  tail worst-K (K=" + std::to_string(k_)
                      + ", considered="
                      + std::to_string(considered_) + "):\n";
    std::size_t rank = 0;
    for (const TailSpan *s : worstFirst()) {
        const TailStage dom = dominantStage(*s);
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "    #%zu [%s] id=%llu src=%u %s addr=0x%llx "
                      "lat=%.1fns worst_in=%s(%.1fns) stack_exact=%d\n",
                      rank++, tailRegimeName(s->regime),
                      static_cast<unsigned long long>(s->id),
                      static_cast<unsigned>(s->source),
                      memCmdName(s->cmd),
                      static_cast<unsigned long long>(s->addr),
                      static_cast<double>(s->latency()) / tickPerNs,
                      traceStageName(dom.stage),
                      static_cast<double>(dom.ticks) / tickPerNs,
                      stackExact(*s) ? 1 : 0);
        out += buf;
    }
    return out;
}

namespace
{

void
appendTailEvent(std::string &out, bool &first, const std::string &name,
                int pid, Tick ts, Tick dur, const TailSpan &span,
                const char *stage)
{
    if (!first)
        out += ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.6f,"
                  "\"dur\":%.6f,\"pid\":%d,\"tid\":%u,"
                  "\"args\":{\"id\":%llu,\"addr\":%llu,\"stage\":\"%s\"}}",
                  name.c_str(), static_cast<double>(ts) / 1e6,
                  static_cast<double>(dur) / 1e6, pid,
                  static_cast<unsigned>(TailCapture::kTailTid),
                  static_cast<unsigned long long>(span.id),
                  static_cast<unsigned long long>(span.addr), stage);
    out += buf;
}

} // namespace

void
TailCapture::appendTraceEvents(std::string &out, int pid,
                               bool &first) const
{
    for (const TailSpan *s : worstFirst()) {
        appendTailEvent(out, first,
                        std::string("tail:") + tailRegimeName(s->regime),
                        pid, s->start, s->latency(), *s, "tail");
        for (std::size_t i = 0; i < s->marks.size(); ++i) {
            const StageMark &m = s->marks[i];
            const Tick until = i + 1 < s->marks.size()
                                   ? s->marks[i + 1].at
                                   : s->end;
            appendTailEvent(out, first, traceStageName(m.stage), pid,
                            m.at, until > m.at ? until - m.at : 0, *s,
                            traceStageName(m.stage));
        }
    }
}

} // namespace cxlmemo
