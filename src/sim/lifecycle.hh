/**
 * @file
 * Host memory-failure handling: the per-page error ledger that turns
 * individual consumed-poison events into page offlining, mirroring
 * the kernel's memory_failure() soft-offline path. The cache
 * hierarchy reports every consumed poison with its physical address;
 * once a page accumulates `offlineThreshold` events the handler
 * offlines it (capped at `maxOfflinePages`), fires the registered
 * hooks (the tiering layer uses one to migrate live data off the
 * page via DSA), and keeps offlined-capacity accounting.
 *
 * Pure bookkeeping: offlining never delays or reschedules anything,
 * so the handler is free to exist without perturbing timing. With
 * offlineThreshold == 0 the ledger never records and behaviour is
 * bit-identical to a build without it.
 */

#ifndef CXLMEMO_SIM_LIFECYCLE_HH
#define CXLMEMO_SIM_LIFECYCLE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/chaos.hh"
#include "sim/types.hh"

namespace cxlmemo
{

class MemoryFailureHandler
{
  public:
    static constexpr std::uint64_t pageBytes = 4096;

    MemoryFailureHandler(std::uint32_t offlineThreshold,
                         std::uint32_t maxOfflinePages)
        : threshold_(offlineThreshold), maxPages_(maxOfflinePages)
    {
    }

    /** Hook fired once per offlined page with the page base address.
     *  @return bytes of live data the hook migrated off the page. */
    using OfflineHook = std::function<std::uint64_t(Addr, Tick)>;

    void addOfflineHook(OfflineHook h) { hooks_.push_back(std::move(h)); }

    /**
     * One consumed-poison event at @p addr. Bumps the page's ledger
     * entry; crossing the threshold offlines the page and fires the
     * hooks. Re-reports on an already-offlined page are counted but
     * never re-offline it.
     */
    void
    notePoison(Addr addr, Tick now)
    {
        if (threshold_ == 0)
            return;
        ++stats_.poisonEvents;
        const Addr page = addr & ~(pageBytes - 1);
        auto &entry = ledger_[page];
        if (entry.offlined)
            return;
        if (++entry.errors >= threshold_
            && stats_.pagesOfflined < maxPages_)
            offline(page, entry, now);
    }

    bool
    isOffline(Addr addr) const
    {
        const auto it = ledger_.find(addr & ~(pageBytes - 1));
        return it != ledger_.end() && it->second.offlined;
    }

    /** Ledger pages currently tracked (offlined or not). */
    std::size_t trackedPages() const { return ledger_.size(); }

    const ChaosStats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_ = ChaosStats{};
        ledger_.clear();
    }

  private:
    struct Entry
    {
        std::uint32_t errors = 0;
        bool offlined = false;
    };

    void
    offline(Addr page, Entry &entry, Tick now)
    {
        entry.offlined = true;
        ++stats_.pagesOfflined;
        stats_.offlinedBytes += pageBytes;
        for (const auto &hook : hooks_)
            stats_.migratedBytes += hook(page, now);
    }

    std::uint32_t threshold_;
    std::uint32_t maxPages_;
    std::unordered_map<Addr, Entry> ledger_;
    std::vector<OfflineHook> hooks_;
    ChaosStats stats_;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_LIFECYCLE_HH
