#include "sim/watchdog.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cxlmemo
{

Watchdog::Watchdog(EventQueue &eq, WatchdogParams params)
    : eq_(eq), params_(params)
{
}

std::uint64_t
Watchdog::totalRetired() const
{
    std::uint64_t sum = 0;
    for (const ProgressSource *s : sources_)
        sum += s->progressRetired();
    return sum;
}

std::uint64_t
Watchdog::totalOutstanding() const
{
    std::uint64_t sum = 0;
    for (const ProgressSource *s : sources_)
        sum += s->progressOutstanding();
    return sum;
}

void
Watchdog::arm()
{
    if (armed_ || tripped_)
        return;
    armed_ = true;
    // Fresh baseline: progress made while disarmed must not be
    // mistaken for progress within the next interval, and vice versa.
    lastRetired_ = totalRetired();
    strikes_ = 0;
    if (onSchedule_)
        onSchedule_(eq_.curTick() + params_.interval);
    eq_.scheduleIn(params_.interval, [this] { snapshot(); });
}

void
Watchdog::snapshot()
{
    armed_ = false;
    ++snapshots_;
    if (tripped_)
        return;

    for (const ProgressSource *s : sources_) {
        const std::string violation = s->progressInvariant();
        if (!violation.empty()) {
            trip("invariant violated in '" + s->progressName()
                 + "': " + violation);
            return;
        }
    }

    const std::uint64_t retired = totalRetired();
    const std::uint64_t outstanding = totalOutstanding();
    if (outstanding > 0 && retired == lastRetired_) {
        if (++strikes_ >= params_.strikes) {
            std::ostringstream why;
            why << "no forward progress for "
                << nsFromTicks(params_.interval * strikes_)
                << " ns with " << outstanding
                << " request(s) outstanding (livelock)";
            trip(why.str());
            return;
        }
    } else {
        strikes_ = 0;
    }
    lastRetired_ = retired;

    const std::size_t left =
        pendingHook_ ? pendingHook_() : eq_.pending();
    if (left > 0) {
        arm();
    } else if (outstanding > 0) {
        trip("event queue drained with "
             + std::to_string(outstanding)
             + " request(s) outstanding (deadlock)");
    }
    // Quiesced (no events, no work): stand down until rearmed.
}

void
Watchdog::noteEvent(Tick at, const std::string &text)
{
    if (events_.size() >= maxEvents) {
        events_.erase(events_.begin());
        ++eventsDropped_;
    }
    char head[48];
    std::snprintf(head, sizeof(head), "t=%.1f ns: ", nsFromTicks(at));
    events_.push_back(head + text);
}

void
Watchdog::trip(const std::string &why)
{
    tripped_ = true;
    std::ostringstream os;
    os << "watchdog trip at " << nsFromTicks(eq_.curTick())
       << " ns: " << why << "\n";
    for (const ProgressSource *s : sources_) {
        os << "  source '" << s->progressName() << "': retired "
           << s->progressRetired() << ", outstanding "
           << s->progressOutstanding() << "\n"
           << s->progressDiagnosis();
    }
    if (!events_.empty()) {
        os << "  lifecycle events";
        if (eventsDropped_ > 0)
            os << " (" << eventsDropped_ << " older dropped)";
        os << ":\n";
        for (const std::string &e : events_)
            os << "    " << e << "\n";
    }
    for (const auto &dump : postMortems_)
        os << dump();
    report_ = os.str();
    if (onTrip_) {
        onTrip_(report_);
        return;
    }
    std::fputs(report_.c_str(), stderr);
    std::abort();
}

} // namespace cxlmemo
