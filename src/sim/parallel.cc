#include "sim/parallel.hh"

#include <algorithm>
#include <stdexcept>

#include "sim/logging.hh"

namespace cxlmemo
{

ParallelExecutor::ParallelExecutor(std::vector<EventQueue *> domains,
                                   Tick lookahead, std::uint32_t threads)
    : domains_(std::move(domains)),
      lookahead_(lookahead),
      threads_(std::min<std::uint32_t>(
          std::max<std::uint32_t>(threads, 1),
          static_cast<std::uint32_t>(
              std::max<std::size_t>(domains_.size(), 1))))
{
    if (domains_.empty())
        throw std::invalid_argument(
            "ParallelExecutor: no domains to execute");
    if (lookahead_ == 0)
        throw std::invalid_argument(
            "ParallelExecutor: zero lookahead admits no window");
    for (const EventQueue *eq : domains_)
        if (!eq)
            throw std::invalid_argument(
                "ParallelExecutor: null domain queue");
    outbox_.resize(domains_.size());

    // Workers 1..threads-1; the coordinator doubles as worker 0, so a
    // single-threaded executor spawns nothing and runs the identical
    // window algorithm inline.
    sync_.reserve(threads_);
    for (std::uint32_t w = 0; w < threads_; ++w)
        sync_.push_back(std::make_unique<WorkerSync>());
    workers_.reserve(threads_ - 1);
    for (std::uint32_t w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ParallelExecutor::~ParallelExecutor()
{
    stop_.store(true, std::memory_order_relaxed);
    ++generation_;
    for (std::uint32_t w = 1; w < threads_; ++w)
        sync_[w]->go.store(generation_, std::memory_order_release);
    for (auto &t : workers_)
        t.join();
}

void
ParallelExecutor::post(std::uint32_t src, std::uint32_t dst, Tick when,
                       CrossCallback cb)
{
    CXLMEMO_ASSERT(src < domains_.size() && dst < domains_.size(),
                   "post between unknown domains (%u -> %u)",
                   (unsigned)src, (unsigned)dst);
    if (src == dst) {
        domains_[src]->schedule(
            when, [cb = std::move(cb), when] { cb(when); });
        return;
    }
    // Staged into the source's private outbox: only the worker
    // executing src touches it during a window, only the coordinator
    // at the barrier, so no lock is needed and the append order is the
    // deterministic per-source merge order.
    outbox_[src].push_back(Staged{dst, when, std::move(cb)});
}

void
ParallelExecutor::mergeOutboxes(Tick floor)
{
    for (EventQueue *eq : domains_)
        eq->beginExternalDrive();
    for (auto &box : outbox_) {
        for (Staged &s : box) {
            ++crossPosts_;
            Tick delivery = s.when;
            if (delivery < floor) {
                delivery = floor;
                ++clampedPosts_;
            }
            domains_[s.dst]->schedule(
                delivery,
                [cb = std::move(s.cb), delivery] { cb(delivery); });
        }
        box.clear();
    }
    for (EventQueue *eq : domains_)
        eq->endExternalDrive();
}

Tick
ParallelExecutor::minPeek() const
{
    Tick w = maxTick;
    for (const EventQueue *eq : domains_)
        w = std::min(w, eq->peekNextTick());
    return w;
}

Tick
ParallelExecutor::curTick() const
{
    Tick t = 0;
    for (const EventQueue *eq : domains_)
        t = std::max(t, eq->curTick());
    return t;
}

std::size_t
ParallelExecutor::pending() const
{
    std::size_t n = 0;
    for (const EventQueue *eq : domains_)
        n += eq->pending();
    // Staged cross-posts count too: a fence callback asking "is there
    // anything left?" runs before the barrier merge, and the only
    // remaining work may still sit in an outbox.
    for (const auto &box : outbox_)
        n += box.size();
    return n;
}

void
ParallelExecutor::runDomainsOf(std::uint32_t worker, Tick target)
{
    for (std::size_t d = worker; d < domains_.size(); d += threads_)
        domains_[d]->runUntil(target);
}

void
ParallelExecutor::workerLoop(std::uint32_t worker)
{
    WorkerSync &sync = *sync_[worker];
    std::uint64_t gen = 1;
    while (true) {
        // Spin briefly (windows are short), then yield.
        std::uint32_t spins = 0;
        while (sync.go.load(std::memory_order_acquire) < gen) {
            if (++spins > 4096) {
                std::this_thread::yield();
                spins = 0;
            }
        }
        if (stop_.load(std::memory_order_relaxed))
            return;
        runDomainsOf(worker, target_.load(std::memory_order_relaxed));
        sync.done.store(gen, std::memory_order_release);
        ++gen;
    }
}

bool
ParallelExecutor::run(Tick limit)
{
    CXLMEMO_ASSERT(!running_, "ParallelExecutor::run is not reentrant");
    running_ = true;

    while (true) {
        const Tick start = minPeek();
        if (start == maxTick || start > limit)
            break;

        // Drop fences that no longer fence anything (a disarmed
        // sampler's stale registration).
        while (!fences_.empty() && *fences_.begin() < start)
            fences_.erase(fences_.begin());

        if (!fences_.empty() && *fences_.begin() == start) {
            // Sequential fence step: every domain executes exactly the
            // fence tick, in rank order, on this thread. Callbacks here
            // may read any domain's state and re-register fences.
            ++windows_;
            for (EventQueue *eq : domains_)
                eq->runUntil(start);
            mergeOutboxes(start);
            fences_.erase(start);
            continue;
        }

        // Parallel window [start, end): width L, cut short by the
        // next fence and by the (inclusive) run limit.
        Tick end = start > maxTick - lookahead_ ? maxTick
                                                : start + lookahead_;
        if (!fences_.empty())
            end = std::min(end, *fences_.begin());
        if (limit != maxTick)
            end = std::min(end, limit + 1);
        const Tick target = end - 1;
        ++windows_;

        if (threads_ == 1) {
            runDomainsOf(0, target);
        } else {
            target_.store(target, std::memory_order_relaxed);
            ++generation_;
            for (std::uint32_t w = 1; w < threads_; ++w)
                sync_[w]->go.store(generation_,
                                   std::memory_order_release);
            runDomainsOf(0, target);
            for (std::uint32_t w = 1; w < threads_; ++w) {
                std::uint32_t spins = 0;
                while (sync_[w]->done.load(std::memory_order_acquire)
                       < generation_) {
                    if (++spins > 4096) {
                        std::this_thread::yield();
                        spins = 0;
                    }
                }
            }
        }

        mergeOutboxes(end);
    }

    // Align every domain on one final tick: the last executed event
    // when drained (matching EventQueue::run), the limit when stopped
    // (matching runUntil).
    const bool drained = minPeek() == maxTick;
    const Tick final = drained ? curTick() : limit;
    for (EventQueue *eq : domains_)
        if (eq->curTick() < final)
            eq->advanceTo(final);
    running_ = false;
    return drained;
}

} // namespace cxlmemo
