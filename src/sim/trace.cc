#include "sim/trace.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/tailcap.hh"

namespace cxlmemo
{

const char *
traceStageName(TraceStage s)
{
    switch (s) {
      case TraceStage::Issue:      return "issue";
      case TraceStage::LfbWait:    return "lfb_wait";
      case TraceStage::Cache:      return "cache";
      case TraceStage::Dram:       return "dram";
      case TraceStage::Upi:        return "upi";
      case TraceStage::CxlM2s:     return "cxl_m2s";
      case TraceStage::CxlCredit:  return "cxl_credit";
      case TraceStage::CxlIngress: return "cxl_ingress";
      case TraceStage::CxlEgress:  return "cxl_egress";
      case TraceStage::CxlS2m:     return "cxl_s2m";
      case TraceStage::SwM2s:      return "sw_m2s";
      case TraceStage::SwCredit:   return "sw_credit";
      case TraceStage::SwVoq:      return "sw_voq";
      case TraceStage::SwXbar:     return "sw_xbar";
      case TraceStage::SwDev:      return "sw_dev";
      case TraceStage::SwEgress:   return "sw_egress";
      case TraceStage::SwS2m:      return "sw_s2m";
      case TraceStage::SwFenceAbort: return "sw_fence_abort";
    }
    return "?";
}

RequestTracer::RequestTracer(std::uint64_t sampleEvery, std::size_t ringCap)
    : sampleEvery_(sampleEvery), ringCap_(ringCap)
{
}

TraceSpan *
RequestTracer::maybeStart(std::uint16_t source, MemCmd cmd, Addr addr,
                          Tick at)
{
    bool sampled = false;
    if (sampleEvery_ != 0) {
        ++seen_;
        // Countdown, not modulo: this runs at every request issue on
        // the hot path, and a u64 division per request is measurable
        // at pool scale. Starts at 1 so the first request is sampled,
        // matching the (seen % N == 0) rule this replaces.
        if (--countdown_ == 0) {
            countdown_ = sampleEvery_;
            sampled = true;
        }
    }
    // Tail mode spans *every* demand read: the requests that are the
    // p99 are almost never the 1-in-N sampled ones.
    const bool tail = tail_ != nullptr && cmd == MemCmd::Read;
    if (!sampled && !tail)
        return nullptr;
    std::unique_ptr<TraceSpan> span;
    if (!free_.empty()) {
        span = std::move(free_.back());
        free_.pop_back();
        span->marks.clear();
    } else {
        span = std::make_unique<TraceSpan>();
    }
    span->id = nextId_++;
    span->source = source;
    span->cmd = cmd;
    span->addr = addr;
    span->start = at;
    span->end = 0;
    span->sampled = sampled;
    span->openIdx = static_cast<std::uint32_t>(open_.size());
    TraceSpan *raw = span.get();
    open_.push_back(std::move(span));
    return raw;
}

void
RequestTracer::finish(TraceSpan *span, Tick at)
{
    CXLMEMO_ASSERT(span != nullptr, "finishing a null span");
    span->end = at;
    const std::size_t idx = span->openIdx;
    CXLMEMO_ASSERT(idx < open_.size() && open_[idx].get() == span,
                   "span finished twice or never opened");
    std::unique_ptr<TraceSpan> done = std::move(open_[idx]);
    // Swap-remove (O(1) via the span's stored slot index): span
    // completion order is timing-dependent anyway; exports sort
    // nothing and viewers order by timestamp.
    if (idx != open_.size() - 1) {
        open_[idx] = std::move(open_.back());
        open_[idx]->openIdx = static_cast<std::uint32_t>(idx);
    }
    open_.pop_back();

    if (tail_ && done->cmd == MemCmd::Read)
        tail_->consider(*done);

    if (!done->sampled) {
        // Tail-only span: considered above, never exported or ringed
        // (the ring stays the sampled flight recorder). Recycle it.
        free_.push_back(std::move(done));
        return;
    }
    if (ringCap_ > 0) {
        if (ring_.size() == ringCap_)
            ring_.pop_front();
        ring_.push_back(*done);
    }
    if (completed_.size() < maxCompleted_)
        completed_.push_back(std::move(*done));
    else
        ++dropped_;
    free_.push_back(std::move(done));
}

namespace
{

/** One Chrome complete ("X") event; ts/dur in microseconds. */
void
appendEvent(std::string &out, bool &first, const char *name, int pid,
            std::uint16_t tid, Tick ts, Tick dur, const TraceSpan &span,
            const char *stage)
{
    if (!first)
        out += ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.6f,"
                  "\"dur\":%.6f,\"pid\":%d,\"tid\":%u,"
                  "\"args\":{\"id\":%llu,\"addr\":%llu,\"stage\":\"%s\"}}",
                  name, static_cast<double>(ts) / 1e6,
                  static_cast<double>(dur) / 1e6, pid,
                  static_cast<unsigned>(tid),
                  static_cast<unsigned long long>(span.id),
                  static_cast<unsigned long long>(span.addr), stage);
    out += buf;
}

} // namespace

void
RequestTracer::appendTraceEvents(std::string &out, int pid,
                                 bool &first) const
{
    for (const TraceSpan &span : completed_) {
        appendEvent(out, first, memCmdName(span.cmd), pid, span.source,
                    span.start, span.end - span.start, span, "span");
        for (std::size_t i = 0; i < span.marks.size(); ++i) {
            const StageMark &m = span.marks[i];
            const Tick until = i + 1 < span.marks.size()
                                   ? span.marks[i + 1].at
                                   : span.end;
            appendEvent(out, first, traceStageName(m.stage), pid,
                        span.source, m.at,
                        until > m.at ? until - m.at : 0, span,
                        traceStageName(m.stage));
        }
    }
}

namespace
{

void
appendSpanLine(std::string &out, const TraceSpan &s, bool open, Tick now)
{
    char buf[192];
    const char *last =
        s.marks.empty() ? "issue" : traceStageName(s.marks.back().stage);
    if (open) {
        std::snprintf(buf, sizeof(buf),
                      "    open id=%llu src=%u %s addr=0x%llx "
                      "age=%.1fns stuck_in=%s\n",
                      static_cast<unsigned long long>(s.id),
                      static_cast<unsigned>(s.source), memCmdName(s.cmd),
                      static_cast<unsigned long long>(s.addr),
                      static_cast<double>(now - s.start) / tickPerNs,
                      last);
    } else {
        std::snprintf(buf, sizeof(buf),
                      "    done id=%llu src=%u %s addr=0x%llx "
                      "lat=%.1fns last=%s\n",
                      static_cast<unsigned long long>(s.id),
                      static_cast<unsigned>(s.source), memCmdName(s.cmd),
                      static_cast<unsigned long long>(s.addr),
                      static_cast<double>(s.end - s.start) / tickPerNs,
                      last);
    }
    out += buf;
}

} // namespace

std::string
RequestTracer::postMortem(Tick now) const
{
    std::string out = "  flight recorder (sample 1/"
                      + std::to_string(sampleEvery_) + "):\n";
    out += "   in-flight spans: " + std::to_string(open_.size()) + "\n";
    for (const auto &p : open_)
        appendSpanLine(out, *p, true, now);
    out += "   last " + std::to_string(ring_.size())
           + " completed spans:\n";
    for (const TraceSpan &s : ring_)
        appendSpanLine(out, s, false, now);
    return out;
}

} // namespace cxlmemo
