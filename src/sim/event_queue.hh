/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, insertion sequence).
 * Components capture what they need in the callback; there is no
 * separate Event class hierarchy because the framework schedules
 * hundreds of thousands of short-lived one-shot events (memory request
 * completions), which InlineCallback represents without touching the
 * allocator.
 *
 * Scheduling structure: a two-tier calendar queue.
 *
 *  - Near future: a wheel of power-of-two windows covering the next
 *    ~2 us of simulated time. schedule() appends to the target window's
 *    bucket in O(1); a window is sorted once, when execution reaches
 *    it, by radix-friendly 64-bit keys (in-window offset, arrival
 *    index), so events themselves are never moved by ordering.
 *    Cache/DRAM/flit completions -- the dense bulk of all events --
 *    land here.
 *  - Far future: events beyond the wheel horizon (measurement-window
 *    timers, think-time arrivals) go to a small binary min-heap.
 *
 * Events scheduled *into the currently executing window* (a callback
 * scheduling a zero/short-delay follow-up) also go to the heap, because
 * the window's bucket has already been sorted; the execution loop merges
 * heap and window candidates, so total (tick, seq) order is exact.
 *
 * Reentrancy contract: callbacks may schedule() freely, but must not
 * call runUntil(), run() or reset() on their own queue (asserted).
 */

#ifndef CXLMEMO_SIM_EVENT_QUEUE_HH
#define CXLMEMO_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/**
 * The event queue at the heart of every simulation.
 *
 * Usage:
 * @code
 *   EventQueue eq;
 *   eq.schedule(ticksFromNs(10), [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    /**
     * Inline capture capacity of an event callback. Kept at the same
     * ~48 B sweet spot as the completion callbacks: an Event is then
     * 80 B, so a window's bucket stays cache-resident while sorting
     * and executing. Device events that move a whole MemRequest into
     * the capture fall back to one heap cell -- exactly what
     * std::function did -- and measurements show the smaller queue
     * footprint beats keeping them inline at 3x the event size.
     */
    static constexpr std::size_t eventInlineBytes = 48;

    using Callback = InlineCallback<void(), eventInlineBytes>;

    EventQueue() : wheel_(numWindows) {}
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return size_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= curTick(): the past cannot be changed.
     */
    void
    schedule(Tick when, Callback cb)
    {
        CXLMEMO_ASSERT(when >= curTick_,
                       "scheduling into the past (%llu < %llu)",
                       (unsigned long long)when,
                       (unsigned long long)curTick_);
        ++size_;
        if (when < sortedWindowEnd_
            || when - windowStart(curTick_) >= horizonTicks) {
            pushFar(when, std::move(cb));
        } else {
            const std::size_t b = windowIndex(when);
            wheel_[b].emplace_back(when, nextSeq_++, std::move(cb));
            occ_[b >> 6] |= std::uint64_t(1) << (b & 63);
            ++wheelCount_;
        }
    }

    /**
     * Schedule @p cb to run @p delay ticks from now.
     *
     * @throws std::invalid_argument when curTick() + delay overflows
     *     Tick. Tick is unsigned, so a negative delay computed by a
     *     caller arrives here as a huge positive value -- the overflow
     *     check catches both mistakes, in the same throwing style as
     *     the config-validation layer, instead of silently wrapping
     *     into the past and tripping the schedule() assert with a
     *     nonsense tick.
     */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        if (delay > maxTick - curTick_) {
            throw std::invalid_argument(
                "EventQueue::scheduleIn: delay "
                + std::to_string(delay) + " from tick "
                + std::to_string(curTick_)
                + " overflows the tick counter (negative delay?)");
        }
        schedule(curTick_ + delay, std::move(cb));
    }

    /**
     * Earliest pending event time, without disturbing queue state;
     * maxTick when empty. The parallel executor uses this to pick the
     * next safe-window start across domains.
     */
    Tick
    peekNextTick() const
    {
        if (size_ == 0)
            return maxTick;
        Tick best = maxTick;
        if (activeIdx_ < order_.size())
            best = activeWindowStart_ + (order_[activeIdx_] >> 32);
        if (!far_.empty() && far_.front().when < best)
            best = far_.front().when;
        if (wheelCount_ > 0) {
            // Same occupancy-bitmap scan as loadNextWindow, minus the
            // mutation: find the first populated window, then take the
            // min tick inside its (unsorted) bucket.
            const Tick startTick =
                std::max(nextScanWindow_, windowStart(curTick_));
            const std::size_t s = windowIndex(startTick);
            std::size_t word = s >> 6;
            std::uint64_t bits =
                occ_[word] & (~std::uint64_t(0) << (s & 63));
            while (bits == 0) {
                word = (word + 1) % occWords;
                bits = occ_[word];
            }
            const std::size_t b = (word << 6) + std::countr_zero(bits);
            for (const Event &ev : wheel_[b])
                if (ev.when < best)
                    best = ev.when;
        }
        return best;
    }

    /**
     * Mark the queue as being driven from outside runUntil(): the
     * parallel executor delivers staged cross-window callbacks by
     * invoking them directly at the window barrier. While driven, the
     * usual reentrancy rules apply exactly as inside a callback --
     * schedule() is fine, reset()/runUntil() assert.
     */
    void
    beginExternalDrive()
    {
        CXLMEMO_ASSERT(!running_ && !driven_,
                       "beginExternalDrive on a queue already running");
        driven_ = true;
    }

    void
    endExternalDrive()
    {
        CXLMEMO_ASSERT(driven_, "endExternalDrive without begin");
        driven_ = false;
    }

    /** Advance time to @p now without executing anything (used by the
     *  parallel executor to align an idle domain with the barrier). */
    void
    advanceTo(Tick now)
    {
        CXLMEMO_ASSERT(now >= curTick_, "advanceTo into the past");
        CXLMEMO_ASSERT(peekNextTick() >= now,
                       "advanceTo skipping pending events");
        curTick_ = now;
    }

    /**
     * Run events until the queue drains or @p limit is reached.
     * Events scheduled exactly at @p limit still execute.
     * @return true if the queue drained, false if the limit stopped us.
     */
    bool
    runUntil(Tick limit)
    {
        CXLMEMO_ASSERT(!running_ && !driven_,
                       "runUntil called from a callback");
        running_ = true;
        while (size_ > 0) {
            // Lazily sort the next populated wheel window once the
            // previous one is spent.
            if (activeIdx_ >= order_.size() && wheelCount_ > 0)
                loadNextWindow();

            if (activeIdx_ < order_.size() && far_.empty())
                [[likely]] {
                // Fast path: next event comes from the sorted window
                // and nothing in the heap can precede it. Execute in
                // place -- the callback is never moved.
                const std::uint64_t key = order_[activeIdx_];
                const Tick when = activeWindowStart_ + (key >> 32);
                if (when > limit) {
                    curTick_ = limit;
                    running_ = false;
                    return false;
                }
                ++activeIdx_;
                curTick_ = when;
                --size_;
                ++executed_;
                Event &ev = active_[static_cast<std::uint32_t>(key)];
                ev.cb();
                ev.cb = nullptr;
                continue;
            }

            // Merge path: pick the earlier of the window cursor and
            // the far heap by (tick, seq).
            Event *wEv = nullptr;
            Tick wWhen = 0;
            if (activeIdx_ < order_.size()) {
                const std::uint64_t key = order_[activeIdx_];
                wWhen = activeWindowStart_ + (key >> 32);
                wEv = &active_[static_cast<std::uint32_t>(key)];
            }
            Event *fEv = far_.empty() ? nullptr : far_.data();
            const bool fromFar =
                !wEv
                || (fEv
                    && (fEv->when < wWhen
                        || (fEv->when == wWhen && fEv->seq < wEv->seq)));

            const Tick when = fromFar ? fEv->when : wWhen;
            if (when > limit) {
                curTick_ = limit;
                running_ = false;
                return false;
            }
            curTick_ = when;
            --size_;
            ++executed_;
            if (fromFar) {
                Callback cb = popFar();
                cb();
            } else {
                ++activeIdx_;
                wEv->cb();
                wEv->cb = nullptr;
            }
        }
        running_ = false;
        return true;
    }

    /** Run until the queue is empty. */
    void run() { runUntil(maxTick); }

    /** Drop all pending events and reset time to zero. */
    void
    reset()
    {
        // Staged cross-window callbacks run under an external drive
        // rather than runUntil, so the reentrancy assert must cover
        // both flags -- resetting mid-delivery would free events the
        // executor still holds.
        CXLMEMO_ASSERT(!running_ && !driven_,
                       "reset called from a callback");
        for (auto &bucket : wheel_)
            bucket.clear();
        for (auto &word : occ_)
            word = 0;
        far_.clear();
        active_.clear();
        order_.clear();
        activeIdx_ = 0;
        activeWindowStart_ = 0;
        sortedWindowEnd_ = 0;
        nextScanWindow_ = 0;
        wheelCount_ = 0;
        size_ = 0;
        curTick_ = 0;
        nextSeq_ = 0;
        executed_ = 0;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq; //!< FIFO order among same-tick events
        Callback cb;

        Event(Tick w, std::uint64_t s, Callback &&c)
            : when(w), seq(s), cb(std::move(c))
        {}
        Event(Event &&) noexcept = default;
        Event &operator=(Event &&) noexcept = default;
    };

    /** Window geometry: 2^12 ticks (~4 ns) per window, 512 windows,
     *  so the wheel covers ~2.1 us -- beyond every device latency in
     *  the testbeds, keeping heap traffic to coarse timers only. */
    static constexpr std::uint64_t windowBits = 12;
    static constexpr std::uint64_t windowTicks = std::uint64_t(1)
                                                 << windowBits;
    static constexpr std::size_t numWindows = 512;
    static constexpr std::uint64_t horizonTicks = windowTicks
                                                  * numWindows;

    static Tick
    windowStart(Tick t)
    {
        return t & ~(windowTicks - 1);
    }

    static std::size_t
    windowIndex(Tick t)
    {
        return static_cast<std::size_t>((t >> windowBits)
                                        % numWindows);
    }

    /** Sort the next populated window into execution order. */
    void
    loadNextWindow()
    {
        const Tick startTick =
            std::max(nextScanWindow_, windowStart(curTick_));
        const std::size_t s = windowIndex(startTick);
        // Occupancy-bitmap scan: first populated window at or after
        // the start, O(numWindows/64) worst case.
        std::size_t word = s >> 6;
        std::uint64_t bits = occ_[word] & (~std::uint64_t(0) << (s & 63));
        while (bits == 0) {
            word = (word + 1) % occWords;
            bits = occ_[word];
        }
        const unsigned lowBit = std::countr_zero(bits);
        const std::size_t b = (word << 6) + lowBit;
        occ_[word] &= ~(std::uint64_t(1) << lowBit);
        const std::size_t delta = (b + numWindows - s) % numWindows;
        const Tick w = startTick + delta * windowTicks;

        // Swap storage so the bucket keeps its capacity for the next
        // wheel lap; events are executed in place via the order keys,
        // never moved by sorting.
        active_.clear();
        active_.swap(wheel_[b]);
        wheelCount_ -= active_.size();

        // Sort keys, not events: (in-window offset << 32 | arrival
        // index). Within a bucket arrival index == seq order, so an
        // ascending plain-integer sort is exactly (tick, seq) FIFO.
        order_.clear();
        order_.reserve(active_.size());
        bool sorted = true;
        Tick prev = 0;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(active_.size()); ++i) {
            const Tick off = active_[i].when - w;
            sorted &= off >= prev;
            prev = off;
            order_.push_back((off << 32) | i);
        }
        // Buckets are filled in seq order, so ascending ticks (the
        // common completion pattern) arrive presorted.
        if (!sorted)
            std::sort(order_.begin(), order_.end());
        activeIdx_ = 0;
        activeWindowStart_ = w;
        sortedWindowEnd_ = w + windowTicks;
        nextScanWindow_ = w + windowTicks;
    }

    void
    pushFar(Tick when, Callback cb)
    {
        far_.emplace_back(when, nextSeq_++, std::move(cb));
        std::push_heap(far_.begin(), far_.end(), farAfter);
    }

    Callback
    popFar()
    {
        std::pop_heap(far_.begin(), far_.end(), farAfter);
        Callback cb = std::move(far_.back().cb);
        far_.pop_back();
        return cb;
    }

    /** Heap comparator: true when @p a runs after @p b (max-heap on
     *  "runs later" == min-heap on (when, seq)). */
    static bool
    farAfter(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    static constexpr std::size_t occWords = numWindows / 64;

    std::vector<std::vector<Event>> wheel_;
    std::uint64_t occ_[occWords] = {}; //!< non-empty-bucket bitmap
    std::vector<Event> far_;    //!< min-heap by (when, seq)
    std::vector<Event> active_; //!< storage of the window being run
    std::vector<std::uint64_t> order_; //!< sorted execution keys
    std::size_t activeIdx_ = 0;
    Tick activeWindowStart_ = 0;
    Tick sortedWindowEnd_ = 0;  //!< end of the last sorted window
    Tick nextScanWindow_ = 0;   //!< first window not yet sorted
    std::size_t wheelCount_ = 0;
    std::size_t size_ = 0;
    bool running_ = false;
    bool driven_ = false; //!< inside beginExternalDrive/endExternalDrive

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_EVENT_QUEUE_HH
