/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, insertion sequence).
 * Components capture what they need in the callback; there is no
 * separate Event class hierarchy because the framework schedules
 * hundreds of thousands of short-lived one-shot events (memory request
 * completions) where a std::function heap entry is the simplest
 * correct representation.
 */

#ifndef CXLMEMO_SIM_EVENT_QUEUE_HH
#define CXLMEMO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/**
 * The event queue at the heart of every simulation.
 *
 * Usage:
 * @code
 *   EventQueue eq;
 *   eq.schedule(ticksFromNs(10), [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= curTick(): the past cannot be changed.
     */
    void
    schedule(Tick when, Callback cb)
    {
        CXLMEMO_ASSERT(when >= curTick_,
                       "scheduling into the past (%llu < %llu)",
                       (unsigned long long)when,
                       (unsigned long long)curTick_);
        heap_.push(PendingEvent{when, nextSeq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue drains or @p limit is reached.
     * Events scheduled exactly at @p limit still execute.
     * @return true if the queue drained, false if the limit stopped us.
     */
    bool
    runUntil(Tick limit)
    {
        while (!heap_.empty()) {
            const PendingEvent &top = heap_.top();
            if (top.when > limit) {
                curTick_ = limit;
                return false;
            }
            // Move the callback out before popping so that the callback
            // may itself schedule new events.
            Callback cb = std::move(const_cast<PendingEvent &>(top).cb);
            curTick_ = top.when;
            heap_.pop();
            ++executed_;
            cb();
        }
        return true;
    }

    /** Run until the queue is empty. */
    void run() { runUntil(maxTick); }

    /** Drop all pending events and reset time to zero. */
    void
    reset()
    {
        heap_ = {};
        curTick_ = 0;
        nextSeq_ = 0;
        executed_ = 0;
    }

  private:
    struct PendingEvent
    {
        Tick when;
        std::uint64_t seq; //!< FIFO order among same-tick events
        Callback cb;

        bool
        operator>(const PendingEvent &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                        std::greater<>> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_EVENT_QUEUE_HH
