/**
 * @file
 * Fixed-size log-bucket latency histogram (HDR-histogram style).
 *
 * SampleSeries stores every sample, which is exact but O(n) memory and
 * O(n log n) per percentile query -- fine for a few hundred thousand
 * experiment-level samples, hostile on per-request hot paths that see
 * tens of millions of events. LatencyHistogram records into a fixed
 * array of buckets: values below 2^subBits land in exact linear
 * buckets; above that each power-of-two octave is split into 2^subBits
 * sub-buckets, bounding relative error at 1/2^subBits (~3% for
 * subBits = 5). record() is O(1) with no allocation, merge() is exact
 * integer addition (associative and commutative, so SweepRunner
 * workers can histogram independently and combine in any grouping),
 * and percentile() is a bucket walk over a few hundred entries.
 *
 * Exact min/max/sum/count are tracked separately so mean() and the
 * extremes carry no quantization error; only interior percentiles are
 * approximate (reported as the representative midpoint of the bucket).
 */

#ifndef CXLMEMO_SIM_HISTOGRAM_HH
#define CXLMEMO_SIM_HISTOGRAM_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>

#include "sim/logging.hh"

namespace cxlmemo
{

class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits sub-buckets per octave. */
    static constexpr std::uint32_t kSubBits = 5;
    static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
    /** Octaves above the linear region; covers the full u64 range. */
    static constexpr std::uint32_t kOctaves = 64 - kSubBits;
    static constexpr std::uint32_t kBuckets = kSubBuckets * (kOctaves + 1);

    void
    record(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_)
                            / static_cast<double>(count_)
                      : 0.0;
    }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    bool empty() const { return count_ == 0; }

    /**
     * Approximate percentile with nearest-rank semantics over the
     * bucket counts; exact at the extremes (clamped to min/max).
     * @param p percentile in [0, 100]
     */
    double
    percentile(double p) const
    {
        if (count_ == 0)
            return 0.0;
        CXLMEMO_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
        auto rank = static_cast<std::uint64_t>(
            p / 100.0 * static_cast<double>(count_) + 0.9999999);
        rank = std::clamp<std::uint64_t>(rank, 1, count_);
        std::uint64_t seen = 0;
        for (std::uint32_t b = 0; b < kBuckets; ++b) {
            seen += buckets_[b];
            if (seen >= rank) {
                const double mid = bucketMidpoint(b);
                // The bucket containing the true min/max may be wide;
                // clamp so p0/p100 report the exact extremes.
                return std::clamp(mid, static_cast<double>(min_),
                                  static_cast<double>(max_));
            }
        }
        return static_cast<double>(max_);
    }

    double p50() const { return percentile(50.0); }
    double p99() const { return percentile(99.0); }

    /** Raw bucket counts (windowed-delta snapshots subtract these). */
    const std::array<std::uint64_t, kBuckets> &
    bucketCounts() const
    {
        return buckets_;
    }

    /**
     * Batch quantile extraction over a raw bucket-count array in one
     * walk. Same nearest-rank rule as percentile(), reported as bucket
     * midpoints (no min/max clamp: windowed deltas track no extremes).
     * @param counts per-bucket counts (e.g. a cur - prev delta window)
     * @param total sum of @p counts (caller usually has it already)
     * @param qs ascending percentiles in [0, 100], n of them
     * @param out receives one midpoint per entry of @p qs
     */
    static void
    quantilesFromBuckets(const std::array<std::uint64_t, kBuckets> &counts,
                         std::uint64_t total, const double *qs,
                         double *out, std::size_t n)
    {
        if (total == 0) {
            for (std::size_t i = 0; i < n; ++i)
                out[i] = 0.0;
            return;
        }
        std::size_t q = 0;
        std::uint64_t seen = 0;
        for (std::uint32_t b = 0; b < kBuckets && q < n; ++b) {
            seen += counts[b];
            while (q < n) {
                auto rank = static_cast<std::uint64_t>(
                    qs[q] / 100.0 * static_cast<double>(total)
                    + 0.9999999);
                rank = std::clamp<std::uint64_t>(rank, 1, total);
                if (seen < rank)
                    break;
                out[q++] = bucketMidpoint(b);
            }
        }
        // Unreached quantiles (total undercounted by caller): last bucket.
        for (; q < n; ++q)
            out[q] = bucketMidpoint(kBuckets - 1);
    }

    /** Exact combine: bucket counts add, extremes take the hull. */
    void
    merge(const LatencyHistogram &o)
    {
        for (std::uint32_t b = 0; b < kBuckets; ++b)
            buckets_[b] += o.buckets_[b];
        count_ += o.count_;
        sum_ += o.sum_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
    }

    /** Bucket index a value lands in (exposed for tests). */
    static std::uint32_t
    bucketOf(std::uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<std::uint32_t>(v);
        const auto msb =
            static_cast<std::uint32_t>(63 - std::countl_zero(v));
        const std::uint32_t octave = msb - kSubBits + 1;
        const auto sub =
            static_cast<std::uint32_t>((v >> (msb - kSubBits))
                                       & (kSubBuckets - 1));
        return octave * kSubBuckets + sub;
    }

    /** Representative value (midpoint) of a bucket. */
    static double
    bucketMidpoint(std::uint32_t b)
    {
        const std::uint32_t octave = b / kSubBuckets;
        const std::uint32_t sub = b % kSubBuckets;
        if (octave == 0)
            return static_cast<double>(sub);
        const std::uint32_t shift = octave - 1;
        const double lo = static_cast<double>(
            (static_cast<std::uint64_t>(kSubBuckets + sub)) << shift);
        const double width =
            static_cast<double>(std::uint64_t{1} << shift);
        return lo + width / 2.0;
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_HISTOGRAM_HH
