/**
 * @file
 * Knobs for the observability subsystem (tracing, interval metrics,
 * per-component latency histograms). All off by default; a Machine
 * built with the default options constructs no observers, schedules
 * no events and behaves bit-identically to a build without the
 * subsystem.
 */

#ifndef CXLMEMO_SIM_OBSERVABILITY_HH
#define CXLMEMO_SIM_OBSERVABILITY_HH

#include <cstddef>
#include <cstdint>

#include "sim/types.hh"

namespace cxlmemo
{

struct ObservabilityOptions
{
    /** Trace every Nth request (0 = tracing off). */
    std::uint64_t traceSampleEvery = 0;

    /** Completed spans kept in the watchdog post-mortem ring. */
    std::size_t traceRing = 32;

    /** Metrics snapshot interval in sim time (0 = metrics off). */
    Tick metricsInterval = 0;

    /** Per-component latency histograms (device access latency). */
    bool latencyHistograms = false;

    /** Exhaustive latency accounting and bottleneck attribution
     *  (sim/attribution.hh): every-request queue/service accounting
     *  on all stations plus the demand-read latency stack. */
    bool attribution = false;

    /** Worst-K tail capture depth per regime class (sim/tailcap.hh):
     *  every completed demand read is considered, the K worst per
     *  Local/Remote/Cxl/Fabric class are retained with their full
     *  stage bracket (0 = off). */
    std::uint32_t tailK = 0;

    bool
    enabled() const
    {
        return traceSampleEvery != 0 || metricsInterval != 0
               || latencyHistograms || attribution || tailK != 0;
    }
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_OBSERVABILITY_HH
