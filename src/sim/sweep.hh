/**
 * @file
 * SweepRunner: run the independent points of a parameter sweep on a
 * pool of host threads.
 *
 * Every figure reproduction is a grid of (target x op x threads x
 * block) points, and each point builds its own Machine -- simulations
 * share no mutable state, so points are embarrassingly parallel. The
 * runner hands out point indices to worker threads and writes each
 * result into its index's slot, so the output order (and therefore any
 * CSV rendered from it) is identical for every job count: determinism
 * is positional, not temporal.
 *
 * Contract for the point function: it must depend only on its index
 * (and captured immutable state). Simulations satisfy this by
 * construction -- a Machine owns its event queue, RNGs are seeded per
 * point, and nothing in the framework mutates globals.
 */

#ifndef CXLMEMO_SIM_SWEEP_HH
#define CXLMEMO_SIM_SWEEP_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cxlmemo
{

class SweepRunner
{
  public:
    /**
     * @param jobs worker threads to use; 1 runs points inline on the
     *        calling thread (no threads are spawned), 0 means one per
     *        hardware thread.
     */
    explicit SweepRunner(unsigned jobs = 1)
        : jobs_(jobs != 0 ? jobs
                          : std::max(1u,
                                     std::thread::hardware_concurrency()))
    {}

    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate @p fn(i) for every i in [0, n) and return the results
     * in index order. Exceptions from points are rethrown on the
     * calling thread (the first one encountered wins; remaining
     * points may be skipped).
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using Result = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<Result> results(n);
        if (n == 0)
            return results;

        if (jobs_ == 1) {
            for (std::size_t i = 0; i < n; ++i)
                results[i] = fn(i);
            return results;
        }

        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::once_flag errorOnce;

        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n || failed.load(std::memory_order_relaxed))
                    return;
                try {
                    results[i] = fn(i);
                } catch (...) {
                    std::call_once(errorOnce, [&] {
                        error = std::current_exception();
                    });
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        };

        const std::size_t spawn =
            std::min<std::size_t>(jobs_, n) - 1;
        std::vector<std::thread> pool;
        pool.reserve(spawn);
        for (std::size_t t = 0; t < spawn; ++t)
            pool.emplace_back(worker);
        worker(); // the calling thread is the last worker
        for (auto &t : pool)
            t.join();

        if (error)
            std::rethrow_exception(error);
        return results;
    }

    /**
     * Evaluate @p fn(i) for every i in [0, n) and fold the results
     * into one via `result.merge(other)`, always in index order, so
     * the aggregate is identical for every job count whenever merge
     * is associative (exact for counter-style merges; mergeable stats
     * like RunningStats and LatencyHistogram are designed for this).
     * @p n must be nonzero (there is no identity element to return).
     */
    template <typename Fn>
    auto
    mapMerge(std::size_t n, Fn fn)
        -> std::invoke_result_t<Fn &, std::size_t>
    {
        auto results = map(n, std::move(fn));
        auto out = std::move(results.front());
        for (std::size_t i = 1; i < results.size(); ++i)
            out.merge(results[i]);
        return out;
    }

    /** Run @p fn(i) for every i in [0, n); results are discarded. */
    template <typename Fn>
    void
    forEach(std::size_t n, Fn fn)
    {
        map(n, [&fn](std::size_t i) {
            fn(i);
            return 0;
        });
    }

  private:
    unsigned jobs_;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_SWEEP_HH
