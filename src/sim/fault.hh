/**
 * @file
 * Deterministic fault injection for the CXL memory path.
 *
 * Real CXL 1.1 deployments live or die on their RAS behaviour: flit
 * CRC errors trigger the link-layer ack/nak retry machine, DRAM may
 * hand back poisoned cachelines, controllers stall and hosts retry
 * with bounded exponential backoff. cxlmemo models all of these as
 * *injected* faults driven by a FaultInjector that owns its own
 * seeded RNG stream, separate from every workload generator:
 *
 *  - with faults disabled (the default), no component ever consults
 *    the injector, so every figure is bit-identical to the fault-free
 *    simulator;
 *  - with faults enabled, the same seed and spec reproduce the exact
 *    fault sequence, because each Machine owns one injector and the
 *    event order within a Machine is deterministic.
 *
 * RasStats aggregates every recovery action machine-wide; nothing is
 * ever silently consumed -- an injected poison either shows up as
 * poisonConsumed (absorbed by the cache hierarchy and observed by a
 * load), poisonDelivered (handed to a non-caching consumer), or
 * poisonContained (the chaos layer aborted the request before any
 * consumer saw data).
 */

#ifndef CXLMEMO_SIM_FAULT_HH
#define CXLMEMO_SIM_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/**
 * Per-component fault model, parsed from the `--fault-spec` grammar:
 *
 *   key=value[,key=value...]
 *
 *   crc=RATE        per-flit CRC error probability on each link
 *                   direction (triggers link-level retry)
 *   poison=RATE     per-DRAM-read poisoned-cacheline probability
 *   timeout=RATE    per-request controller-timeout probability
 *                   (triggers host retry with exponential backoff)
 *   drain=RATE      per-write probability of a stuck/slow-drain
 *                   episode in the device write buffer
 *   dram=RATE       per-access probability of a transient back-end
 *                   DRAM channel stall
 *   stall-ns=NS     episode length for drain and DRAM stalls
 *   timeout-ns=NS   host completion-timer value
 *   backoff-ns=NS   base host-retry backoff (doubles per attempt,
 *                   capped at 16x the base)
 *   retries=N       max host retries per request (1..16)
 *   degrade=N       CRC errors before the link downgrades width
 *                   (halving rawGBps, at most twice); 0 = never
 *   degrade-window-ns=NS
 *                   burst window: at most one downgrade per window,
 *                   and the burst counter re-arms at window expiry
 *   seed=N          fault RNG stream seed
 */
struct FaultSpec
{
    double crcPerFlit = 0.0;     //!< per-flit CRC error probability
    double readPoisonRate = 0.0; //!< per-read poisoned-line probability
    double timeoutRate = 0.0;    //!< per-request timeout probability
    double drainStallRate = 0.0; //!< per-write drain-stall probability
    double dramStallRate = 0.0;  //!< per-access channel-stall probability

    Tick drainStallTicks = ticksFromNs(400.0);
    Tick dramStallTicks = ticksFromNs(400.0);

    Tick requestTimeout = ticksFromNs(2000.0); //!< host completion timer
    Tick backoffBase = ticksFromNs(200.0);     //!< first retry backoff
    std::uint32_t maxHostRetries = 8;          //!< bounded retry budget

    /** CRC errors that trigger one link width/speed downgrade
     *  (halving rawGBps, at most twice); 0 disables degradation. */
    std::uint32_t degradeBurst = 0;

    /** Burst observation window (`degrade-window-ns`): at most one
     *  downgrade fires per window, and the error counter re-arms when
     *  the window expires -- two closely-spaced bursts cannot
     *  double-downgrade the link inside one window. */
    Tick degradeWindow = ticksFromNs(1000.0);

    std::uint64_t seed = 0x0badc0de5eedULL; //!< dedicated RNG stream

    /** @return true when any fault can actually fire. */
    bool
    enabled() const
    {
        return crcPerFlit > 0.0 || readPoisonRate > 0.0
               || timeoutRate > 0.0 || drainStallRate > 0.0
               || dramStallRate > 0.0;
    }

    /** Throws std::invalid_argument on out-of-range values. */
    void validate() const;

    /** Render in the `--fault-spec` grammar (only non-default keys). */
    std::string toString() const;

    /**
     * Parse the `--fault-spec` grammar.
     * @return std::nullopt plus a one-line reason in @p error on
     *         malformed or out-of-range input.
     */
    static std::optional<FaultSpec> parse(const std::string &text,
                                          std::string &error);
};

/** Machine-wide RAS counters; every recovery action is accounted. */
struct RasStats
{
    /* link-level retry */
    std::uint64_t crcErrors = 0;     //!< flits that failed CRC
    std::uint64_t linkRetries = 0;   //!< ack/nak replay rounds
    std::uint64_t flitsReplayed = 0; //!< flits re-sent from the retry buffer
    std::uint64_t replayBytes = 0;   //!< link capacity burned by replays
    std::uint64_t retryTicks = 0;    //!< delivery delay added by retries

    /* controller timeout / host retry */
    std::uint64_t timeouts = 0;     //!< requests that hit the timer
    std::uint64_t hostRetries = 0;  //!< re-issued requests
    std::uint64_t backoffTicks = 0; //!< time spent waiting + backing off

    /* stall episodes */
    std::uint64_t drainStalls = 0; //!< write-buffer stuck-drain episodes
    std::uint64_t dramStalls = 0;  //!< transient back-end channel stalls

    /* poison */
    std::uint64_t poisonInjected = 0;  //!< poisoned lines created
    std::uint64_t poisonConsumed = 0;  //!< observed via the cache hierarchy
    std::uint64_t poisonDelivered = 0; //!< handed to a non-caching consumer
    std::uint64_t poisonContained = 0; //!< aborted before any consumer
                                       //!< saw data (chaos containment)

    /* graceful degradation */
    std::uint64_t linkDegradations = 0; //!< width/speed downgrade events

    void reset() { *this = RasStats{}; }

    void merge(const RasStats &o);

    /** Single-line `key=value` rendering for reports and CI greps. */
    std::string summary() const;
};

/**
 * The fault oracle threaded through the memory path. Components hold
 * a (possibly null) pointer; a null injector means faults are
 * disabled and every hook is dead code.
 *
 * All decisions flow through one dedicated RNG stream, so workload
 * randomness is untouched and a (seed, spec, workload) triple replays
 * the exact same fault sequence.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec)
        : spec_(spec), rng_(spec.seed)
    {
        spec_.validate();
    }

    const FaultSpec &spec() const { return spec_; }
    RasStats &stats() { return stats_; }
    const RasStats &stats() const { return stats_; }

    /* ------------------------- decisions ------------------------- */

    /** Does this flit fail CRC at the receiver? */
    bool flitCrcError() { return roll(spec_.crcPerFlit); }

    /** Does this DRAM read return a poisoned cacheline? */
    bool poisonRead() { return roll(spec_.readPoisonRate); }

    /** Does this request attempt hit the host completion timer? */
    bool requestTimedOut() { return roll(spec_.timeoutRate); }

    /** Does this buffered write hit a stuck/slow-drain episode? */
    bool drainStall() { return roll(spec_.drainStallRate); }

    /** Does this back-end access hit a transient channel stall? */
    bool dramStall() { return roll(spec_.dramStallRate); }

    /* --------------------- poison hand-off ----------------------- *
     * The device arms poison immediately before invoking a read's
     * completion chain (which runs synchronously); the cache
     * hierarchy consumes it while filling. Whatever is still armed
     * when the chain returns went to a non-caching consumer and is
     * reported as poisonDelivered by the device -- never dropped.
     * ------------------------------------------------------------- */

    void armPoison() { poisonArmed_ = true; }

    /** @return whether poison was armed; always disarms. */
    bool
    consumePoison()
    {
        const bool armed = poisonArmed_;
        poisonArmed_ = false;
        return armed;
    }

  private:
    bool
    roll(double p)
    {
        if (p <= 0.0)
            return false;
        return rng_.chance(p);
    }

    FaultSpec spec_;
    Rng rng_;
    RasStats stats_;
    bool poisonArmed_ = false;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_FAULT_HH
