/**
 * @file
 * InlineCallback: a move-only callable wrapper with configurable
 * inline storage, built for the simulation hot path.
 *
 * The discrete-event kernel retires millions of one-shot callbacks per
 * simulated figure; with std::function, any capture set beyond two
 * pointers heap-allocates (libstdc++ keeps 16 bytes inline), and the
 * completion chain of a single memory access performs several such
 * allocations. InlineCallback stores the callable inside the wrapper
 * itself whenever it fits, so the common capture sets -- a `this`
 * pointer plus a few scalars, or a whole MemRequest moved into an
 * event -- never touch the allocator. Oversized callables transparently
 * fall back to a single heap cell, preserving std::function's
 * "anything callable" convenience.
 *
 * Differences from std::function, by design:
 *  - move-only: completion callbacks are consumed exactly once, and
 *    copyability is what forces std::function to allocate type-erased
 *    clone machinery. Use std::move at every hand-off.
 *  - no target_type()/target() introspection.
 *  - invoking an empty callback asserts instead of throwing.
 */

#ifndef CXLMEMO_SIM_CALLBACK_HH
#define CXLMEMO_SIM_CALLBACK_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"
#include "sim/pool.hh"

namespace cxlmemo
{

template <typename Signature, std::size_t InlineBytes = 48>
class InlineCallback;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineCallback<R(Args...), InlineBytes>
{
  public:
    /** Bytes of capture state stored without heap allocation. */
    static constexpr std::size_t inlineBytes = InlineBytes;

    InlineCallback() noexcept = default;
    InlineCallback(std::nullptr_t) noexcept {}

    /** Wrap any callable; inline when it fits, one heap cell when not. */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineCallback>
                  && !std::is_same_v<D, std::nullptr_t>
                  && std::is_invocable_r_v<R, D &, Args...>>>
    InlineCallback(F &&f) // NOLINT: implicit, like std::function
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(storage_)) D(std::forward<F>(f));
            invoke_ = &invokeInline<D>;
            ops_ = &inlineOps<D>;
        } else if constexpr (alignof(D) <= alignof(std::max_align_t)) {
            // Spilled callables are hot-path traffic (device events
            // moving a MemRequest); serve the cell from the free-list
            // pool instead of global new.
            void *cell = poolAlloc(sizeof(D));
            ::new (static_cast<void *>(storage_))
                (D *)(::new (cell) D(std::forward<F>(f)));
            invoke_ = &invokeHeap<D>;
            ops_ = &pooledHeapOps<D>;
        } else {
            ::new (static_cast<void *>(storage_))
                (D *)(new D(std::forward<F>(f)));
            invoke_ = &invokeHeap<D>;
            ops_ = &heapOps<D>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    R
    operator()(Args... args) const
    {
        CXLMEMO_ASSERT(invoke_, "invoking an empty InlineCallback");
        return invoke_(const_cast<unsigned char *>(storage_),
                       std::forward<Args>(args)...);
    }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    friend bool
    operator==(const InlineCallback &cb, std::nullptr_t) noexcept
    {
        return !cb;
    }

    /** @return true if the wrapped callable lives in inline storage
     *  (empty callbacks report true: they own no heap cell). */
    bool storedInline() const noexcept { return !ops_ || !ops_->onHeap; }

    void
    swap(InlineCallback &other) noexcept
    {
        InlineCallback tmp(std::move(other));
        other = std::move(*this);
        *this = std::move(tmp);
    }

  private:
    /**
     * Per-type lifetime operations. Trivially copyable callables (the
     * overwhelmingly common `this`-plus-scalars lambdas) use null
     * entries: relocation degenerates to an inlinable fixed-size
     * memcpy and destruction to nothing, so the event hot path makes
     * no indirect call besides the invocation itself.
     */
    struct Ops
    {
        void (*relocate)(void *dst, void *src); //!< null => memcpy
        void (*destroy)(void *target);          //!< null => no-op
        std::uint32_t bytes;                    //!< memcpy length
        bool onHeap;
    };

    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= InlineBytes
        && alignof(D) <= alignof(std::max_align_t)
        && std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    static R
    invokeInline(void *storage, Args... args)
    {
        return (*static_cast<D *>(storage))(std::forward<Args>(args)...);
    }

    template <typename D>
    static R
    invokeHeap(void *storage, Args... args)
    {
        return (**static_cast<D **>(storage))(std::forward<Args>(args)...);
    }

    template <typename D>
    static constexpr Ops inlineOps = {
        std::is_trivially_copyable_v<D>
            ? nullptr
            : +[](void *dst, void *src) {
                  ::new (dst) D(std::move(*static_cast<D *>(src)));
                  static_cast<D *>(src)->~D();
              },
        std::is_trivially_destructible_v<D>
            ? nullptr
            : +[](void *target) { static_cast<D *>(target)->~D(); },
        /*bytes=*/sizeof(D),
        /*onHeap=*/false,
    };

    /** Heap-held callables store a single owning pointer in the inline
     *  buffer; relocation steals the pointer (the memcpy path). */
    template <typename D>
    static constexpr Ops heapOps = {
        nullptr,
        [](void *target) { delete *static_cast<D **>(target); },
        /*bytes=*/sizeof(D *),
        /*onHeap=*/true,
    };

    /** As heapOps, but the cell came from poolAlloc (the common case:
     *  anything not over-aligned). */
    template <typename D>
    static constexpr Ops pooledHeapOps = {
        nullptr,
        [](void *target) {
            D *p = *static_cast<D **>(target);
            p->~D();
            poolFree(p, sizeof(D));
        },
        /*bytes=*/sizeof(D *),
        /*onHeap=*/true,
    };

    void
    moveFrom(InlineCallback &other) noexcept
    {
        if (other.invoke_) {
            if (other.ops_->relocate)
                other.ops_->relocate(storage_, other.storage_);
            else
                std::memcpy(storage_, other.storage_, other.ops_->bytes);
            invoke_ = other.invoke_;
            ops_ = other.ops_;
            other.invoke_ = nullptr;
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (invoke_) {
            if (ops_->destroy)
                ops_->destroy(storage_);
            invoke_ = nullptr;
            ops_ = nullptr;
        }
    }

    using Invoker = R (*)(void *, Args...);

    alignas(std::max_align_t) unsigned char storage_[InlineBytes];
    Invoker invoke_ = nullptr;
    const Ops *ops_ = nullptr;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_CALLBACK_HH
