#include "sim/qos.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cxlmemo
{

const char *
qosPolicyName(QosPolicy p)
{
    switch (p) {
      case QosPolicy::None:
        return "none";
      case QosPolicy::Linear:
        return "linear";
      case QosPolicy::Aimd:
        return "aimd";
    }
    return "?";
}

const char *
devLoadName(DevLoad l)
{
    switch (l) {
      case DevLoad::Light:
        return "light";
      case DevLoad::Optimal:
        return "optimal";
      case DevLoad::Moderate:
        return "moderate";
      case DevLoad::Severe:
        return "severe";
    }
    return "?";
}

namespace
{

bool
parseF(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end != v.c_str() + v.size())
        return false;
    out = d;
    return true;
}

bool
parseU(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    const unsigned long long u = std::strtoull(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size())
        return false;
    out = u;
    return true;
}

void
requireFraction(double v, const char *what)
{
    if (!(v > 0.0 && v <= 1.0)) {
        throw std::invalid_argument(std::string("QosSpec: ") + what
                                    + " must be in (0,1]");
    }
}

} // namespace

void
QosSpec::validate() const
{
    if (rdCredits > 4096 || wrCredits > 4096)
        throw std::invalid_argument(
            "QosSpec: credits must be at most 4096");
    if (!(target > 0.0 && target <= 2.0))
        throw std::invalid_argument(
            "QosSpec: target must be in (0,2]");
    if (ewmaTau == 0)
        throw std::invalid_argument(
            "QosSpec: ewma-ns must be positive");
    if (adjustPeriod == 0)
        throw std::invalid_argument(
            "QosSpec: period-ns must be positive");
    requireFraction(ai, "ai");
    if (!(md > 0.0 && md < 1.0))
        throw std::invalid_argument("QosSpec: md must be in (0,1)");
    requireFraction(floor, "floor");
    if (!(slope > 0.0))
        throw std::invalid_argument("QosSpec: slope must be positive");
    if (burstLines == 0 || burstLines > 64)
        throw std::invalid_argument(
            "QosSpec: burst must be in [1,64]");
    if (lineCost == 0)
        throw std::invalid_argument(
            "QosSpec: line-ns must be positive");
}

std::string
QosSpec::toString() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "rd-credits=%u,wr-credits=%u,policy=%s,target=%g,"
                  "floor=%g,burst=%u",
                  rdCredits, wrCredits, qosPolicyName(policy), target,
                  floor, burstLines);
    return buf;
}

std::optional<QosSpec>
QosSpec::parse(const std::string &text, std::string &error)
{
    QosSpec spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "qos-spec item needs key=value: " + item;
            return std::nullopt;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        double f = 0.0;
        std::uint64_t n = 0;
        if (key == "credits" && parseU(value, n)) {
            spec.rdCredits = static_cast<std::uint32_t>(n);
            spec.wrCredits = static_cast<std::uint32_t>(n);
        } else if (key == "rd-credits" && parseU(value, n)) {
            spec.rdCredits = static_cast<std::uint32_t>(n);
        } else if (key == "wr-credits" && parseU(value, n)) {
            spec.wrCredits = static_cast<std::uint32_t>(n);
        } else if (key == "policy") {
            if (value == "none") {
                spec.policy = QosPolicy::None;
            } else if (value == "linear") {
                spec.policy = QosPolicy::Linear;
            } else if (value == "aimd") {
                spec.policy = QosPolicy::Aimd;
            } else {
                error = "bad qos policy (none|linear|aimd): " + value;
                return std::nullopt;
            }
        } else if (key == "target" && parseF(value, f)) {
            spec.target = f;
        } else if (key == "ewma-ns" && parseF(value, f) && f > 0.0) {
            spec.ewmaTau = ticksFromNs(f);
        } else if (key == "period-ns" && parseF(value, f) && f > 0.0) {
            spec.adjustPeriod = ticksFromNs(f);
        } else if (key == "ai" && parseF(value, f)) {
            spec.ai = f;
        } else if (key == "md" && parseF(value, f)) {
            spec.md = f;
        } else if (key == "floor" && parseF(value, f)) {
            spec.floor = f;
        } else if (key == "slope" && parseF(value, f)) {
            spec.slope = f;
        } else if (key == "burst" && parseU(value, n)) {
            spec.burstLines = static_cast<std::uint32_t>(n);
        } else if (key == "line-ns" && parseF(value, f) && f > 0.0) {
            spec.lineCost = ticksFromNs(f);
        } else {
            error = "bad qos-spec item: " + item;
            return std::nullopt;
        }
    }
    try {
        spec.validate();
    } catch (const std::invalid_argument &e) {
        error = e.what();
        return std::nullopt;
    }
    return spec;
}

void
DevLoadMeter::sample(double inst, Tick now)
{
    if (now > last_) {
        // The previous instantaneous occupancy held over the elapsed
        // interval; decay the smoothed signal toward it.
        const double a =
            std::exp(-static_cast<double>(now - last_) / tau_);
        load_ = prev_ + (load_ - prev_) * a;
        last_ = now;
    }
    prev_ = inst;
}

DevLoad
DevLoadMeter::level() const
{
    // Bands of +/-0.1 around the target occupancy, mirroring the
    // spec's four-level quantization.
    constexpr double band = 0.1;
    if (load_ >= target_ + band)
        return DevLoad::Severe;
    if (load_ >= target_)
        return DevLoad::Moderate;
    if (load_ >= target_ - band)
        return DevLoad::Optimal;
    return DevLoad::Light;
}

std::string
QosStats::summary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "credit-stalls=%llu credit-stall-ns=%llu rd-ledger=%llu/%llu/%llu "
        "wr-ledger=%llu/%llu/%llu ledger=%s devload=%.3f rate=%.3f "
        "min-rate=%.3f incr=%llu decr=%llu throttle-ns=%llu",
        static_cast<unsigned long long>(rdCreditStalls + wrCreditStalls),
        static_cast<unsigned long long>(creditStallTicks / tickPerNs),
        static_cast<unsigned long long>(rdIssued),
        static_cast<unsigned long long>(rdReturned),
        static_cast<unsigned long long>(rdInFlight),
        static_cast<unsigned long long>(wrIssued),
        static_cast<unsigned long long>(wrReturned),
        static_cast<unsigned long long>(wrInFlight),
        ledgerOk ? "ok" : "LEAK",
        devLoad, rate, minRate,
        static_cast<unsigned long long>(rateIncreases),
        static_cast<unsigned long long>(rateDecreases),
        static_cast<unsigned long long>(throttleDelayTicks / tickPerNs));
    return buf;
}

HostThrottle::HostThrottle(const QosSpec &spec, std::uint32_t numCores)
    : spec_(spec), buckets_(numCores)
{
    spec_.validate();
    for (Bucket &b : buckets_)
        b.tokens = static_cast<double>(spec_.burstLines);
}

void
HostThrottle::observe(double load, DevLoad level, Tick now)
{
    if (spec_.policy == QosPolicy::None)
        return;
    if (now < nextAdjust_)
        return;
    nextAdjust_ = now + spec_.adjustPeriod;

    const double before = rate_;
    if (spec_.policy == QosPolicy::Aimd) {
        switch (level) {
          case DevLoad::Light:
            rate_ += spec_.ai;
            break;
          case DevLoad::Optimal:
            break;
          case DevLoad::Moderate:
            rate_ -= spec_.ai;
            break;
          case DevLoad::Severe:
            rate_ *= spec_.md;
            break;
        }
    } else {
        rate_ = 1.0 - spec_.slope * (load - spec_.target);
    }
    rate_ = std::clamp(rate_, spec_.floor, 1.0);
    if (rate_ > before)
        ++increases_;
    else if (rate_ < before)
        ++decreases_;
    minRate_ = std::min(minRate_, rate_);
}

Tick
HostThrottle::issueDelay(std::uint16_t core, Tick at)
{
    Bucket &b = buckets_[core];
    if (rate_ >= 1.0) {
        // Unthrottled: keep the bucket full so the first paced issue
        // after a rate cut still gets its burst.
        b.tokens = static_cast<double>(spec_.burstLines);
        b.lastRefill = at;
        return 0;
    }
    const double perTick = rate_ / static_cast<double>(spec_.lineCost);
    if (at > b.lastRefill) {
        b.tokens = std::min(
            static_cast<double>(spec_.burstLines),
            b.tokens + static_cast<double>(at - b.lastRefill) * perTick);
        b.lastRefill = at;
    }
    if (b.tokens >= 1.0) {
        b.tokens -= 1.0;
        return 0;
    }
    // Dry bucket: sleep until a FULL burst accrues, not just one
    // token. Waiting per-token would space throttled stores evenly,
    // interleaving single lines from every core at the device and
    // destroying DRAM row locality -- the exact failure mode the
    // throttle exists to avoid. Sleeping for the whole burst keeps
    // issues in back-to-back same-row runs at the same long-run rate.
    const double burst = static_cast<double>(spec_.burstLines);
    const double need = burst - b.tokens;
    const Tick delay = static_cast<Tick>(std::ceil(need / perTick));
    b.tokens = burst - 1.0;
    b.lastRefill = at + delay;
    ++delays_;
    delayTicks_ += delay;
    return delay;
}

void
HostThrottle::fillStats(QosStats &qs) const
{
    qs.rate = rate_;
    qs.minRate = minRate_;
    qs.rateIncreases = increases_;
    qs.rateDecreases = decreases_;
    qs.throttleDelays = delays_;
    qs.throttleDelayTicks = delayTicks_;
}

} // namespace cxlmemo
