/**
 * @file
 * Failure-lifecycle ("chaos") schedule: deterministic, scripted
 * whole-component failures layered on top of the rate-based RAS
 * injection in sim/fault.hh. Where FaultInjector flips individual
 * flits and reads, the chaos layer takes entire resources away and
 * brings them back:
 *
 *  - link down / retrain: the CXL link drops at a scheduled tick (or
 *    when a CRC burst rides through the width-degradation ceiling),
 *    blocks traffic for a modeled retrain latency, then comes back at
 *    degraded width and steps back up to full width;
 *  - device hot-remove / re-add: the CXL memory device becomes
 *    unreachable mid-run; outstanding and newly arriving requests
 *    complete-with-poison or abort per a containment policy, the NUMA
 *    node goes offline, and re-add restores the capacity empty;
 *  - poison-driven page offlining: consumed poison feeds a per-page
 *    error ledger (sim/lifecycle.hh) that offlines pages past a
 *    threshold and migrates live data off them.
 *
 * Everything is driven by a `--chaos-spec` schedule: no RNG draws of
 * its own, off by default, and bit-identical to a chaos-free build
 * when disabled (the whole layer is behind null-pointer tests).
 */

#ifndef CXLMEMO_SIM_CHAOS_HH
#define CXLMEMO_SIM_CHAOS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sim/types.hh"

namespace cxlmemo
{

/** What happens to requests caught by a hot-removed device. */
enum class ContainPolicy : std::uint8_t
{
    Poison, //!< complete with a poison indication (data is suspect)
    Abort,  //!< complete with an error, data contained (never seen)
};

const char *containPolicyName(ContainPolicy p);

/**
 * Parsed `--chaos-spec`. All times are absolute simulation nanoseconds
 * (the schedule is a script, not a distribution); 0 means "never" for
 * every event. The default-constructed spec is fully disabled.
 */
struct ChaosSpec
{
    /** Scheduled link-down tick (ns); 0 = never. */
    std::uint64_t linkDownAtNs = 0;

    /** Retrain latency: link blocks for this long after going down. */
    double retrainNs = 2000.0;

    /** After retrain the link re-enters at the degraded-width ceiling
     *  and steps one width level back up every stepUpNs. */
    double stepUpNs = 3000.0;

    /** CRC errors observed *at* the degradation ceiling that trigger
     *  an un-scheduled link-down (0 = never). */
    std::uint32_t crcBurstTrigger = 0;

    /** Scheduled device hot-remove tick (ns); 0 = never. */
    std::uint64_t removeAtNs = 0;

    /** Scheduled re-add tick (ns); 0 = never (must follow remove). */
    std::uint64_t readdAtNs = 0;

    /** Containment policy for requests caught by a removal. */
    ContainPolicy contain = ContainPolicy::Poison;

    /** Latency of an aborted completion (device ruled unreachable). */
    double abortNs = 500.0;

    /** Consumed-poison events on one page before the host offlines it
     *  (0 = page offlining disabled). */
    std::uint32_t offlineThreshold = 0;

    /** Upper bound on offlined pages (containment of the ledger). */
    std::uint32_t maxOfflinePages = 64;

    /** Reserved for randomized drills; the scripted schedule above
     *  never draws from it. */
    std::uint64_t seed = 0xc4a05c4a05ULL;

    /** True when any failure is scheduled or armed. */
    bool
    enabled() const
    {
        return linkDownAtNs > 0 || crcBurstTrigger > 0 || removeAtNs > 0
               || offlineThreshold > 0;
    }

    /** @throw std::invalid_argument on out-of-range values. */
    void validate() const;

    std::string toString() const;

    /**
     * Parse "key=value,key=value" (keys: link-down-at-ns, retrain-ns,
     * step-up-ns, crc-burst, remove-at-ns, readd-at-ns, contain,
     * abort-ns, offline-threshold, max-offline-pages, seed).
     * @return std::nullopt plus an error string on bad input.
     */
    static std::optional<ChaosSpec> parse(const std::string &text,
                                          std::string &error);
};

/**
 * Failure-lifecycle accounting. Device-side fields (link/removal) and
 * host-side fields (page ledger) are owned by different components and
 * merged by Machine::chaosStats(); merge is exact and associative.
 */
struct ChaosStats
{
    /* ------------------------- link FSM -------------------------- */
    std::uint64_t linkDowns = 0;    //!< outages begun
    std::uint64_t retrains = 0;     //!< retrains completed
    std::uint64_t widthStepUps = 0; //!< post-retrain width recoveries
    std::uint64_t blockedMsgs = 0;  //!< messages nak'd into replay
    Tick linkDownAt = 0;            //!< last outage begin
    Tick linkDetectAt = 0;          //!< first blocked message
    Tick linkUpAt = 0;              //!< retrain done (degraded width)
    Tick linkFullWidthAt = 0;       //!< back at full width

    /* ------------------------ device FSM ------------------------- */
    std::uint64_t removals = 0;
    std::uint64_t readds = 0;
    std::uint64_t abortedReads = 0;
    std::uint64_t abortedWrites = 0;
    std::uint64_t abortedBytes = 0; //!< request bytes caught in removal
    Tick removeAt = 0;
    Tick removeDetectAt = 0; //!< first aborted request
    Tick readdAt = 0;

    /* ------------------------ page ledger ------------------------ */
    std::uint64_t poisonEvents = 0; //!< consumed-poison ledger feeds
    std::uint64_t pagesOfflined = 0;
    std::uint64_t offlinedBytes = 0;
    std::uint64_t migratedBytes = 0; //!< live data moved off (DSA)

    /** Bytes of live data resident on a failed resource when it
     *  failed (the headline data-at-risk figure). */
    std::uint64_t dataAtRiskBytes = 0;

    void merge(const ChaosStats &o);

    /** One-line summary for Machine::statsString / drill output. */
    std::string summary() const;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_CHAOS_HH
