/**
 * @file
 * Worst-K tail capture: bounded top-K outlier retention over *every*
 * completed demand read, with the full per-stage trace bracket.
 *
 * The flight recorder samples 1-in-N requests deterministically, so
 * the handful of requests that *are* the p99 are almost never traced.
 * TailCapture closes that gap: the tracer hands it every completed
 * demand-read span (tail mode makes spans free-listed and O(1) to
 * retire, so this is affordable at every-request volume), and it keeps
 * only the K worst per *regime class* -- Local / Remote / Cxl / Fabric,
 * classified from the stages the request actually touched -- each with
 * its complete ordered stage marks.
 *
 * Determinism contract (same as every observability layer):
 *
 *  - off by default (k == 0 builds nothing, considers nothing);
 *  - the retained set is the top-K of the *set* of completed reads
 *    under a strict total order (latency desc, then start tick asc,
 *    then span id asc, then source asc), so it is independent of
 *    completion/insertion order -- byte-identical at every `--jobs`
 *    and every `--sim-threads >= 1` count;
 *  - merge() is the exact associative top-K union, so per-shard
 *    captures combine in any grouping;
 *  - a span's per-stage breakdown telescopes over its marks, so the
 *    stage durations sum *exactly* (integer ticks) to the measured
 *    end-to-end latency -- machine-checked and exported as
 *    `tail_stack_exact`.
 */

#ifndef CXLMEMO_SIM_TAILCAP_HH
#define CXLMEMO_SIM_TAILCAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/**
 * Station regime a request resolved to, derived from the stages its
 * span actually touched: any switch-path stage makes it Fabric, else
 * any CXL stage makes it Cxl, else a UPI hop makes it Remote, else it
 * stayed Local (caches + host DRAM).
 */
enum class TailRegime : std::uint8_t
{
    Local,
    Remote,
    Cxl,
    Fabric,
    NumRegimes,
};

constexpr std::size_t numTailRegimes =
    static_cast<std::size_t>(TailRegime::NumRegimes);

const char *tailRegimeName(TailRegime r);

/** One retained outlier: the span's identity plus its full bracket. */
struct TailSpan
{
    std::uint64_t id = 0;
    std::uint16_t source = 0;
    MemCmd cmd = MemCmd::Read;
    Addr addr = 0;
    Tick start = 0;
    Tick end = 0;
    TailRegime regime = TailRegime::Local;
    std::vector<StageMark> marks;

    Tick latency() const { return end - start; }
};

/** One telescoped stage contribution. Signed: per-thread local clocks
 *  can mark fractionally out of order, and keeping the raw difference
 *  is what makes the stack sum *exactly* to the end-to-end latency. */
struct TailStage
{
    TraceStage stage;
    std::int64_t ticks;
};

/** Strict worse-first total order (see file header). */
bool tailWorse(const TailSpan &a, const TailSpan &b);

/** Roll-up of one capture for CSV tiers and reports. */
struct TailSummary
{
    std::uint32_t k = 0;          //!< configured per-class depth
    std::uint64_t held = 0;       //!< outliers currently retained
    std::uint64_t considered = 0; //!< demand reads examined
    double worstNs = 0.0;         //!< latency of the worst read
    double kthNs = 0.0;           //!< latency of the K-th worst read
    std::string regime = "none";  //!< regime of the worst read
    std::string stage = "none";   //!< dominant stage of the worst read
    double stageNs = 0.0;         //!< that stage's contribution
    bool stackExact = true;       //!< every held stack sums exactly
};

class TailCapture
{
  public:
    /** @param k worst spans kept per regime class (0 = disabled). */
    explicit TailCapture(std::uint32_t k = 0) : k_(k) {}

    std::uint32_t k() const { return k_; }
    bool armed() const { return k_ > 0; }
    std::uint64_t considered() const { return considered_; }
    std::uint64_t held() const;

    /** Examine one completed span (the tracer calls this for every
     *  demand read). O(log K) when it promotes, O(1) when it does
     *  not (the common case: one compare against the class floor). */
    void consider(const TraceSpan &span);

    /** Exact associative top-K union of another capture (sweep-point
     *  roll-ups, parallel shards). Adopts @p o's depth when this
     *  capture was default-constructed with k == 0. */
    void merge(const TailCapture &o);

    void reset();

    /** Retained outliers of one regime class, worse-first. */
    const std::vector<TailSpan> &
    regimeSpans(TailRegime r) const
    {
        return classes_[static_cast<std::size_t>(r)];
    }

    /** Every retained outlier across classes, worse-first. */
    std::vector<const TailSpan *> worstFirst() const;

    TailSummary summary() const;

    /** Human worst-K table (watchdog post-mortem section). */
    std::string table() const;

    /**
     * Append the retained outliers as Chrome trace events on a
     * dedicated "tail" track (tid = kTailTid): one parent slice per
     * outlier named tail:<regime>, one child slice per stage.
     * Same comma/first protocol as RequestTracer::appendTraceEvents.
     */
    void appendTraceEvents(std::string &out, int pid, bool &first) const;

    /** Thread row the tail track uses in exported traces. */
    static constexpr std::uint16_t kTailTid = 999;

    /** Regime a completed span resolves to (see TailRegime). */
    static TailRegime classify(const TraceSpan &span);

    /**
     * Telescoped per-stage durations: gap to the next mark (span end
     * for the last), plus a leading Issue entry if the first mark sits
     * after span start and an Issue-only entry for mark-less spans.
     * The entries sum exactly (integer ticks) to end - start.
     */
    static std::vector<TailStage> stageBreakdown(const TailSpan &s);

    /** Self-check: the breakdown sums to the measured latency. */
    static bool stackExact(const TailSpan &s);

  private:
    std::uint32_t k_;
    std::uint64_t considered_ = 0;
    /** Worse-first sorted, bounded at k_, one per regime class. */
    std::vector<TailSpan> classes_[numTailRegimes];
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_TAILCAP_HH
