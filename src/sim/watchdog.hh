/**
 * @file
 * Forward-progress watchdog for the simulation engine.
 *
 * Queueing subsystems with finite resources (credit pools, posted
 * gates, replay buffers, retry backoff) can interlock: a bug that
 * loses one completion or leaks one credit turns into a silent hang
 * or -- worse -- a run that slowly starves and reports garbage. The
 * watchdog makes such states *loud*: it snapshots global progress
 * every N ticks and trips when
 *
 *  - **livelock**: no request retired over a whole interval while
 *    work is outstanding,
 *  - **deadlock**: the event queue drained with work still
 *    outstanding (nothing can ever complete it), or
 *  - **invariant violation**: a watched source reports a broken
 *    internal invariant (e.g. the credit ledger
 *    `issued == returned + in_flight`).
 *
 * On trip it collects a structured diagnosis from every watched
 * source (per-queue occupancy, oldest stuck request, credit ledger)
 * and hands it to the trip handler -- by default printed to stderr
 * followed by abort, so a wedged run dies with a post-mortem instead
 * of burning CPU forever.
 *
 * The watchdog is scheduling-neutral when idle: its snapshot event
 * reschedules itself only while other events are pending, so an
 * armed watchdog never keeps `EventQueue::run()` from draining.
 * Disabled (the default), no event is ever scheduled and behaviour
 * is bit-identical to a build without this subsystem.
 */

#ifndef CXLMEMO_SIM_WATCHDOG_HH
#define CXLMEMO_SIM_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/**
 * Anything the watchdog can supervise. Implementors expose a
 * monotone retired-work counter, an outstanding-work gauge and a
 * diagnosis dump; optionally an internal invariant check.
 */
class ProgressSource
{
  public:
    virtual ~ProgressSource() = default;

    /** Stable name used in trip reports. */
    virtual std::string progressName() const = 0;

    /** Monotone count of retired work items (requests completed,
     *  writes drained, ...). Any increase counts as progress. */
    virtual std::uint64_t progressRetired() const = 0;

    /** Work accepted but not yet retired; 0 means quiesced. */
    virtual std::uint64_t progressOutstanding() const = 0;

    /** Multi-line human diagnosis: per-queue occupancy, oldest stuck
     *  entry, credit ledger. Called only on trip. */
    virtual std::string progressDiagnosis() const = 0;

    /** Internal invariant check; empty string = healthy, otherwise a
     *  one-line description of the violation (trips immediately). */
    virtual std::string progressInvariant() const { return {}; }
};

/** Watchdog knobs. */
struct WatchdogParams
{
    /** Snapshot interval (simulated time). The default comfortably
     *  exceeds every calibrated recovery path (timeout + max backoff
     *  is ~5.2 us) so healthy fault-injection runs never trip. */
    Tick interval = ticksFromUs(100.0);

    /** Progress-free snapshots tolerated before tripping. */
    std::uint32_t strikes = 1;
};

/**
 * The watchdog proper. Owned by whoever assembles the simulation
 * (Machine); sources register once, `arm()` starts (or restarts)
 * the snapshot cycle.
 */
class Watchdog
{
  public:
    using TripHandler = std::function<void(const std::string &report)>;

    Watchdog(EventQueue &eq, WatchdogParams params);

    void watch(ProgressSource *source) { sources_.push_back(source); }

    /** Replace the default trip handler (stderr dump + abort). */
    void setOnTrip(TripHandler handler) { onTrip_ = std::move(handler); }

    /**
     * Register an extra post-mortem section appended to the trip
     * report after the per-source diagnoses (e.g. the flight
     * recorder's last-N request spans). Called only on trip.
     */
    void
    addPostMortem(std::function<std::string()> dump)
    {
        postMortems_.push_back(std::move(dump));
    }

    /**
     * Record a lifecycle event (link down/retrain, device hot-plug,
     * page offline). Kept in a bounded ring and appended to every
     * trip report, so a post-mortem shows what the failure layer did
     * right before the hang.
     */
    void noteEvent(Tick at, const std::string &text);

    /** Recorded lifecycle events, oldest first (bounded). */
    const std::vector<std::string> &events() const { return events_; }

    /**
     * Schedule the next snapshot if none is pending. Call after
     * construction and again whenever new work is started after the
     * event queue quiesced (the watchdog stands down at quiesce so
     * it never prevents `run()` from returning).
     */
    void arm();

    bool tripped() const { return tripped_; }
    const std::string &report() const { return report_; }
    std::uint64_t snapshots() const { return snapshots_; }
    bool armed() const { return armed_; }

    /**
     * Parallel-engine hooks. A snapshot reads progress counters owned
     * by other simulation domains, so it must run at a globally
     * quiesced tick: @p onSchedule is told every absolute snapshot
     * tick (the Machine registers it as an executor fence) and
     * @p pending replaces eq.pending() in the deadlock test -- the
     * watchdog's own queue may be empty while other domains still
     * carry the work that will complete the outstanding requests.
     */
    void
    setParallelHooks(std::function<std::size_t()> pending,
                     std::function<void(Tick)> onSchedule)
    {
        pendingHook_ = std::move(pending);
        onSchedule_ = std::move(onSchedule);
    }

  private:
    void snapshot();
    void trip(const std::string &why);
    std::uint64_t totalRetired() const;
    std::uint64_t totalOutstanding() const;

    EventQueue &eq_;
    WatchdogParams params_;
    std::vector<ProgressSource *> sources_;
    std::vector<std::function<std::string()>> postMortems_;
    TripHandler onTrip_;

    std::function<std::size_t()> pendingHook_;
    std::function<void(Tick)> onSchedule_;

    bool armed_ = false;
    bool tripped_ = false;
    std::uint64_t lastRetired_ = 0;
    std::uint32_t strikes_ = 0;
    std::uint64_t snapshots_ = 0;
    std::string report_;

    static constexpr std::size_t maxEvents = 64;
    std::vector<std::string> events_;
    std::uint64_t eventsDropped_ = 0;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_WATCHDOG_HH
