/**
 * @file
 * Overload-survival layer for the CXL.mem path: credit-based flow
 * control, DevLoad-style QoS telemetry and host throttle policies.
 *
 * The paper's most striking robustness result (Sec. 4.3.2) is that
 * unchecked non-temporal store streams overflow the FPGA controller's
 * finite buffers and collapse bandwidth. Real CXL systems defend
 * against exactly this with two spec-level mechanisms that this file
 * models:
 *
 *  - **Credits** (CXL link-layer flow control): each message class
 *    consumes a credit at injection into the M2S direction and the
 *    credit travels back with the S2M response. A starved sender
 *    stalls locally, so device-side queues are *bounded* by the
 *    credit pool instead of growing without limit. CreditPool keeps
 *    an independent ledger (issued / returned / in-flight) so a
 *    leaked credit is detectable as an invariant violation rather
 *    than a silent slow hang.
 *
 *  - **DevLoad telemetry + host throttling** (CXL QoS telemetry):
 *    the device computes an EWMA-smoothed load signal from its
 *    ingress occupancy, quantized to the spec's four DevLoad levels
 *    and piggybacked on response messages. The host reacts with a
 *    configurable policy (none / linear rate cap / AIMD) applied at
 *    the core's NT-store issue point. Throttling is *burst
 *    preserving*: a per-core token bucket with a burst of several
 *    cachelines, so a throttled thread still emits same-row runs and
 *    the DDR4 back-end keeps its row locality -- uniformly spacing
 *    individual lines would destroy exactly the locality the
 *    throttle is trying to protect.
 *
 * Everything here is disabled by default. A default QosSpec creates
 * no pools, no meter and no throttle; no component consults any of
 * them, so every existing figure is bit-identical to a build without
 * this layer (the same guarantee FaultSpec makes for RAS).
 */

#ifndef CXLMEMO_SIM_QOS_HH
#define CXLMEMO_SIM_QOS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cxlmemo
{

/** Host reaction to the device's DevLoad telemetry. */
enum class QosPolicy : std::uint8_t
{
    None,   //!< telemetry may be computed but the host never reacts
    Linear, //!< rate = 1 - slope * (load - target), clamped
    Aimd,   //!< additive increase / multiplicative decrease
};

const char *qosPolicyName(QosPolicy p);

/** The four load levels of CXL QoS telemetry (DevLoad). */
enum class DevLoad : std::uint8_t
{
    Light,    //!< well below target: host may speed up
    Optimal,  //!< near target: hold
    Moderate, //!< above target: back off additively
    Severe,   //!< far above target: back off multiplicatively
};

const char *devLoadName(DevLoad l);

/**
 * Overload-control configuration, parsed from the `--qos-spec`
 * grammar:
 *
 *   key=value[,key=value...]
 *
 *   credits=N     M2S credits for both message classes (0 = uncapped)
 *   rd-credits=N  read-request (header) class credits
 *   wr-credits=N  write-data class credits
 *   policy=P      none | linear | aimd host throttle policy
 *   target=F      DevLoad target occupancy fraction (default 0.75)
 *   ewma-ns=F     load-signal EWMA time constant (default 2000)
 *   period-ns=F   min time between host rate adjustments (default 1000)
 *   ai=F          AIMD additive step (default 0.05)
 *   md=F          AIMD multiplicative decrease factor (default 0.5)
 *   floor=F       minimum host rate fraction (default 0.05)
 *   slope=F       linear-policy slope (default 1.0)
 *   burst=N       token-bucket burst, cachelines (default 8 = one
 *                 core's WC buffers, preserving same-row runs)
 *   line-ns=F     nominal unthrottled per-line issue cost (default
 *                 5.5, the calibrated WC-buffer eviction cost)
 */
struct QosSpec
{
    std::uint32_t rdCredits = 0; //!< 0 disables the read-class pool
    std::uint32_t wrCredits = 0; //!< 0 disables the write-class pool

    QosPolicy policy = QosPolicy::None;
    double target = 0.75;             //!< DevLoad target occupancy
    Tick ewmaTau = ticksFromNs(2000.0);   //!< load EWMA time constant
    Tick adjustPeriod = ticksFromNs(1000.0); //!< rate-adjust period
    double ai = 0.05;    //!< AIMD additive increase step
    double md = 0.5;     //!< AIMD multiplicative decrease factor
    double floor = 0.05; //!< minimum rate fraction
    double slope = 1.0;  //!< linear-policy slope
    std::uint32_t burstLines = 8;     //!< token-bucket burst (lines)
    Tick lineCost = ticksFromNs(5.5); //!< unthrottled per-line cost

    /** @return true when any overload mechanism is active. */
    bool
    enabled() const
    {
        return creditsEnabled() || policy != QosPolicy::None;
    }

    bool creditsEnabled() const { return rdCredits > 0 || wrCredits > 0; }

    /** Throws std::invalid_argument on out-of-range values. */
    void validate() const;

    /** Render in the `--qos-spec` grammar (only non-default keys). */
    std::string toString() const;

    /**
     * Parse the `--qos-spec` grammar.
     * @return std::nullopt plus a one-line reason in @p error on
     *         malformed or out-of-range input.
     */
    static std::optional<QosSpec> parse(const std::string &text,
                                        std::string &error);
};

/**
 * One message class's credit pool with an independent ledger.
 *
 * `issued` and `returned` are counted separately from `available`, so
 * the invariant `issued == returned + inFlight` cross-checks the flow
 * control itself: a credit lost on any path (dropped completion,
 * double acquire) breaks the ledger and is caught by the watchdog /
 * end-of-run checks instead of surfacing as an unexplained stall.
 */
class CreditPool
{
  public:
    explicit CreditPool(std::uint32_t capacity = 0)
        : capacity_(capacity), available_(capacity)
    {
    }

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t available() const { return available_; }
    std::uint32_t inFlight() const { return capacity_ - available_; }

    /** @return false (and count a stall) when the pool is dry. */
    bool
    tryAcquire()
    {
        if (available_ == 0) {
            ++stalls_;
            return false;
        }
        --available_;
        ++issued_;
        return true;
    }

    /** Return one credit (the response message carried it back). */
    void
    release()
    {
        ++available_;
        ++returned_;
    }

    /** Time a starved sender spent waiting for this pool. */
    void noteStallEnd(Tick waited) { stallTicks_ += waited; }

    std::uint64_t issued() const { return issued_; }
    std::uint64_t returned() const { return returned_; }
    std::uint64_t stalls() const { return stalls_; }
    std::uint64_t stallTicks() const { return stallTicks_; }

    /** The credit-leak invariant `issued == returned + in_flight`. */
    bool
    ledgerOk() const
    {
        return available_ <= capacity_
               && issued_ == returned_ + inFlight();
    }

    /** Clear counters without disturbing credits in flight: the
     *  ledger stays consistent across sweep-point stat resets. */
    void
    resetStats()
    {
        issued_ = inFlight();
        returned_ = 0;
        stalls_ = 0;
        stallTicks_ = 0;
    }

  private:
    std::uint32_t capacity_ = 0;
    std::uint32_t available_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t returned_ = 0;
    std::uint64_t stalls_ = 0;
    std::uint64_t stallTicks_ = 0;
};

/** The per-direction credit pools carried by a CXL link direction:
 *  read-request (header) class and write-data class. */
struct LinkCredits
{
    CreditPool rd;
    CreditPool wr;

    LinkCredits(std::uint32_t rdN, std::uint32_t wrN)
        : rd(rdN), wr(wrN)
    {
    }

    bool ledgerOk() const { return rd.ledgerOk() && wr.ledgerOk(); }
};

/**
 * EWMA-smoothed device load signal, quantized to DevLoad levels.
 *
 * Samples are taken at occupancy-change events; the smoothing is
 * time-weighted (the previous instantaneous value is held over the
 * elapsed interval and decayed with time constant ewma-ns), so the
 * signal is independent of how bursty the event arrivals are.
 */
class DevLoadMeter
{
  public:
    explicit DevLoadMeter(const QosSpec &spec)
        : tau_(static_cast<double>(spec.ewmaTau)),
          target_(spec.target)
    {
    }

    /** Record instantaneous occupancy @p inst (fraction; may exceed
     *  1 while overflow queues are populated) at @p now. */
    void sample(double inst, Tick now);

    double load() const { return load_; }
    DevLoad level() const;

    void reset()
    {
        load_ = 0.0;
        prev_ = 0.0;
        last_ = 0;
    }

  private:
    double tau_;
    double target_;
    double load_ = 0.0;
    double prev_ = 0.0;
    Tick last_ = 0;
};

/** Aggregated overload-control counters (Machine-wide). */
struct QosStats
{
    /* credit flow control */
    std::uint64_t rdCreditStalls = 0;
    std::uint64_t wrCreditStalls = 0;
    std::uint64_t creditStallTicks = 0; //!< sender time lost to starvation
    std::uint64_t rdIssued = 0;
    std::uint64_t rdReturned = 0;
    std::uint64_t rdInFlight = 0;
    std::uint64_t wrIssued = 0;
    std::uint64_t wrReturned = 0;
    std::uint64_t wrInFlight = 0;
    bool ledgerOk = true; //!< issued == returned + in_flight, per pool

    /* telemetry + throttle */
    double devLoad = 0.0; //!< final EWMA load signal
    double rate = 1.0;    //!< final host rate fraction
    double minRate = 1.0; //!< lowest rate reached
    std::uint64_t rateIncreases = 0;
    std::uint64_t rateDecreases = 0;
    std::uint64_t throttleDelays = 0;     //!< paced issues
    std::uint64_t throttleDelayTicks = 0; //!< total pacing delay

    void reset() { *this = QosStats{}; }

    /** Single-line `key=value` rendering for reports and CI greps. */
    std::string summary() const;
};

/**
 * Host-side reaction to DevLoad telemetry: one rate fraction shared
 * by all cores of the machine (the host bridge throttles its CXL
 * egress), enforced per core by a burst-preserving token bucket.
 *
 * The bucket holds up to `burst` line-tokens refilled at
 * rate / line-ns; a core with tokens issues immediately, so a WC
 * buffer's worth of NT stores still leaves the core back-to-back and
 * arrives at the device as a same-row run. Only between bursts does
 * the pacer insert delay. All state is per-Machine, keeping sweep
 * results deterministic for any `--jobs` value.
 */
class HostThrottle
{
  public:
    HostThrottle(const QosSpec &spec, std::uint32_t numCores);

    /** DevLoad observation delivered by a response message at @p now;
     *  adjusts the rate at most once per adjustPeriod. */
    void observe(double load, DevLoad level, Tick now);

    /**
     * Pacing delay for one cacheline issued by @p core at @p at.
     * @return 0 when a token is available (the common in-burst case).
     */
    Tick issueDelay(std::uint16_t core, Tick at);

    double rate() const { return rate_; }
    double minRate() const { return minRate_; }
    std::uint64_t rateIncreases() const { return increases_; }
    std::uint64_t rateDecreases() const { return decreases_; }
    std::uint64_t throttleDelays() const { return delays_; }
    std::uint64_t throttleDelayTicks() const { return delayTicks_; }

    void fillStats(QosStats &qs) const;

    /** Clear counters (rate and bucket state persist: the control
     *  loop keeps running across sweep-point stat resets). */
    void
    resetStats()
    {
        increases_ = 0;
        decreases_ = 0;
        delays_ = 0;
        delayTicks_ = 0;
        minRate_ = rate_;
    }

  private:
    struct Bucket
    {
        double tokens = 0.0;
        Tick lastRefill = 0;
    };

    QosSpec spec_;
    double rate_ = 1.0;
    double minRate_ = 1.0;
    Tick nextAdjust_ = 0;
    std::uint64_t increases_ = 0;
    std::uint64_t decreases_ = 0;
    std::uint64_t delays_ = 0;
    std::uint64_t delayTicks_ = 0;
    std::vector<Bucket> buckets_;
};

} // namespace cxlmemo

#endif // CXLMEMO_SIM_QOS_HH
