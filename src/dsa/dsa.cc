#include "dsa/dsa.hh"

#include <memory>
#include <utility>

#include "mem/request.hh"
#include "sim/logging.hh"

namespace cxlmemo
{

Dsa::Dsa(EventQueue &eq, NumaSpace &numa, DsaParams params)
    : eq_(eq), numa_(numa), params_(std::move(params))
{
    CXLMEMO_ASSERT(params_.numEngines > 0, "DSA without engines");
    CXLMEMO_ASSERT(params_.wqDepth > 0, "DSA without a work queue");
    CXLMEMO_ASSERT(params_.chunkBytes >= cachelineBytes
                       && params_.chunkBytes % cachelineBytes == 0,
                   "chunk must be whole cachelines");
    engineBusy_.assign(params_.numEngines, false);
}

bool
Dsa::submit(const DsaDescriptor &desc, Done onComplete)
{
    return submitBatch({desc}, std::move(onComplete));
}

bool
Dsa::submitBatch(std::vector<DsaDescriptor> descs, Done onComplete)
{
    CXLMEMO_ASSERT(!descs.empty(), "empty batch descriptor");
    for (const auto &d : descs) {
        CXLMEMO_ASSERT(d.src && d.dst, "descriptor without buffers");
        CXLMEMO_ASSERT(d.bytes > 0, "zero-byte descriptor");
        CXLMEMO_ASSERT(d.srcOffset + d.bytes <= d.src->size()
                           && d.dstOffset + d.bytes <= d.dst->size(),
                       "descriptor beyond buffer");
    }
    if (wqOccupancy_ >= params_.wqDepth)
        return false; // ENQCMD retry status
    ++wqOccupancy_;
    if (station_)
        station_->enter(eq_.curTick());
    wq_.push_back(Job{std::move(descs), std::move(onComplete),
                      eq_.curTick()});
    // Submission cost is paid by the submitting thread (modelled by
    // the caller); dispatch proceeds after WQ arbitration.
    eq_.scheduleIn(params_.dispatchLatency, [this] { tryDispatch(); });
    return true;
}

void
Dsa::tryDispatch()
{
    while (!wq_.empty()) {
        std::uint32_t engine = params_.numEngines;
        for (std::uint32_t e = 0; e < params_.numEngines; ++e) {
            if (!engineBusy_[e]) {
                engine = e;
                break;
            }
        }
        if (engine == params_.numEngines)
            return; // all PEs busy; re-armed on job completion
        Job job = std::move(wq_.front());
        wq_.pop_front();
        engineBusy_[engine] = true;
        runJob(engine, std::move(job));
    }
}

namespace
{

/** Per-descriptor streaming state, shared by the chunk callbacks. */
struct StreamState
{
    std::uint32_t engine = 0;
    std::vector<DsaDescriptor> descs;
    Dsa::Done onComplete;
    std::size_t idx = 0;
    std::uint64_t cursor = 0;   //!< next byte to read
    std::uint64_t written = 0;  //!< bytes fully written
    std::uint32_t inFlight = 0;
    Tick dispatched = 0; //!< engine grab time (latency accounting)
    /** Issue loop; cleared at descriptor end to break the ownership
     *  cycle (state -> pump closure -> state). */
    InlineCallback<void()> pump;
};

} // namespace

void
Dsa::runJob(std::uint32_t engine, Job job)
{
    auto st = std::make_shared<StreamState>();
    st->engine = engine;
    st->descs = std::move(job.descs);
    st->onComplete = std::move(job.onComplete);
    st->idx = 0;
    st->dispatched = eq_.curTick();
    if (station_)
        station_->account(eq_.curTick() - job.submitted, 0, /*busy=*/0,
                          false, eq_.curTick());

    st->pump = [this, st] {
        const DsaDescriptor &d = st->descs[st->idx];
        while (st->inFlight < params_.chunksInFlight
               && st->cursor < d.bytes) {
            const std::uint64_t off = st->cursor;
            const auto len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(params_.chunkBytes,
                                        d.bytes - off));
            st->cursor += len;
            ++st->inFlight;

            Addr src_local = 0;
            MemoryDevice &src_dev = numa_.route(
                d.src->translate(d.srcOffset + off), src_local);
            MemRequest read;
            read.addr = src_local;
            read.size = len;
            read.cmd = MemCmd::Read;
            read.source = static_cast<std::uint16_t>(
                params_.sourceBase + st->engine);
            read.onComplete = [this, st, off, len](Tick) {
                const DsaDescriptor &d2 = st->descs[st->idx];
                Addr dst_local = 0;
                MemoryDevice &dst_dev = numa_.route(
                    d2.dst->translate(d2.dstOffset + off), dst_local);
                MemRequest write;
                write.addr = dst_local;
                write.size = len;
                // DSA writes bypass the caches like NT stores.
                write.cmd = MemCmd::NtWrite;
                write.source = static_cast<std::uint16_t>(
                    params_.sourceBase + st->engine);
                write.onComplete = [this, st, len](Tick t) {
                    --st->inFlight;
                    st->written += len;
                    bytesCopied_ += len;
                    if (st->written < st->descs[st->idx].bytes) {
                        st->pump();
                        return;
                    }
                    // Descriptor finished.
                    if (st->idx + 1 < st->descs.size()) {
                        ++st->idx;
                        st->cursor = 0;
                        st->written = 0;
                        st->pump();
                        return;
                    }
                    // Job finished: completion record + free the PE.
                    st->pump = nullptr;
                    const Tick done = t + params_.completionLatency;
                    if (st->onComplete) {
                        eq_.schedule(done,
                                     [cb = std::move(st->onComplete),
                                      done] { cb(done); });
                    }
                    CXLMEMO_ASSERT(wqOccupancy_ > 0, "WQ underflow");
                    --wqOccupancy_;
                    if (station_) {
                        station_->exitNow(eq_.curTick());
                        // An engine is genuinely serial per job: its
                        // whole service time is busy occupancy.
                        station_->account(0,
                                          eq_.curTick() - st->dispatched,
                                          eq_.curTick() - st->dispatched,
                                          false, eq_.curTick());
                    }
                    engineBusy_[st->engine] = false;
                    tryDispatch();
                };
                dst_dev.access(std::move(write));
            };
            src_dev.access(std::move(read));
        }
    };
    st->pump();
}

} // namespace cxlmemo
