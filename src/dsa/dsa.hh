/**
 * @file
 * Intel Data Streaming Accelerator (DSA) model.
 *
 * DSA is an on-chip offload engine (new in Sapphire Rapids) that
 * moves memory without consuming core cycles. The model follows the
 * paper's description (Sec. 4.3.1): work queues (WQs) hold offloaded
 * descriptors; processing engines (PEs) pull descriptors and execute
 * them. Descriptors can be submitted synchronously (wait for each
 * completion) or asynchronously (keep many in flight), and batch
 * descriptors amortize the offload cost across entries.
 *
 * A PE executes a copy by streaming chunks: read from the source
 * device, then write to the destination device, with a bounded chunk
 * window -- so throughput is limited by whichever of the two devices
 * (or the engine itself) is slower, reproducing the D2C/C2D/C2C
 * asymmetries of Fig. 4b.
 */

#ifndef CXLMEMO_DSA_DSA_HH
#define CXLMEMO_DSA_DSA_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "numa/numa.hh"
#include "sim/attribution.hh"
#include "sim/event_queue.hh"

namespace cxlmemo
{

/** DSA geometry and costs (SPR-like defaults). */
struct DsaParams
{
    std::uint32_t numEngines = 4;

    /** Descriptors a work queue holds before ENQCMD retries. */
    std::uint32_t wqDepth = 128;

    /** CPU-side cost of one ENQCMD/MOVDIR64B descriptor submission. */
    Tick submitCost = ticksFromNs(40.0);

    /** WQ arbitration + PE descriptor fetch/decode. */
    Tick dispatchLatency = ticksFromNs(250.0);

    /** Completion-record write + polling observation delay. */
    Tick completionLatency = ticksFromNs(120.0);

    /** Transfer granularity of a PE. */
    std::uint32_t chunkBytes = 512;

    /** Chunks a PE keeps in flight (its internal MLP). */
    std::uint32_t chunksInFlight = 8;

    /** Source id base for the engines' memory requests (picked above
     *  any core id so fair-share arbiters see them as one agent). */
    std::uint16_t sourceBase = 256;
};

/** One copy job: dst[0..bytes) = src[0..bytes), buffer-relative. */
struct DsaDescriptor
{
    const NumaBuffer *src = nullptr;
    std::uint64_t srcOffset = 0;
    const NumaBuffer *dst = nullptr;
    std::uint64_t dstOffset = 0;
    std::uint64_t bytes = 0;
};

/**
 * The DSA instance of one socket.
 *
 * Submission API is asynchronous at the hardware level; the MEMO
 * data-movement benchmark builds sync / async / batched flows on top.
 */
class Dsa
{
  public:
    using Done = InlineCallback<void(Tick)>;

    Dsa(EventQueue &eq, NumaSpace &numa, DsaParams params);

    /**
     * Submit one descriptor (one WQ slot).
     * @return false if the WQ is full (ENQCMD retry status); the
     *         caller backs off and resubmits.
     */
    bool submit(const DsaDescriptor &desc, Done onComplete);

    /**
     * Submit a batch descriptor: @p descs execute sequentially on one
     * engine, occupying one WQ slot; @p onComplete fires when the last
     * entry finishes.
     */
    bool submitBatch(std::vector<DsaDescriptor> descs, Done onComplete);

    std::uint32_t wqOccupancy() const { return wqOccupancy_; }
    std::uint64_t bytesCopied() const { return bytesCopied_; }
    const DsaParams &params() const { return params_; }

    /** Attach a latency-accounting station (WQ wait = queue, engine
     *  execution = service; one job per WQ slot). */
    void setStation(AccountedStation *station) { station_ = station; }

  private:
    struct Job
    {
        std::vector<DsaDescriptor> descs;
        Done onComplete;
        Tick submitted = 0;
    };

    void tryDispatch();
    void runJob(std::uint32_t engine, Job job);

    EventQueue &eq_;
    NumaSpace &numa_;
    DsaParams params_;
    std::deque<Job> wq_;
    std::uint32_t wqOccupancy_ = 0;
    std::vector<bool> engineBusy_;
    std::uint64_t bytesCopied_ = 0;
    AccountedStation *station_ = nullptr;
};

} // namespace cxlmemo

#endif // CXLMEMO_DSA_DSA_HH
