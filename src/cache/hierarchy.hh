/**
 * @file
 * Three-level cache hierarchy (per-core L1D and L2, shared LLC) with
 * timing, RFO store-miss semantics, writeback traffic, cacheline
 * flush/writeback instructions and an optional L2 stream prefetcher.
 *
 * Coherence scope: the studied workloads never write-share lines
 * across cores, so cross-core invalidation rounds are not modelled
 * (a store to an S line upgrades for free). What *is* modelled -- and
 * what the paper's results depend on -- is the read-for-ownership
 * fill on store misses and the dirty writeback stream on evictions,
 * i.e. the memory-side traffic of MESI.
 *
 * Inclusivity: L1 and L2 are subsets of the LLC; the LLC tracks the
 * installing core per line so back-invalidation touches exactly one
 * core's private levels.
 */

#ifndef CXLMEMO_CACHE_HIERARCHY_HH
#define CXLMEMO_CACHE_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "cache/cache.hh"
#include "numa/numa.hh"
#include "sim/attribution.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/qos.hh"

namespace cxlmemo
{

class RequestTracer;
struct TraceSpan;

/** Geometry and timing of the whole hierarchy. */
struct HierarchyParams
{
    std::uint32_t numCores = 32;

    /** SPR-like defaults: 48 KiB L1D, 2 MiB L2, 60 MiB shared LLC. */
    CacheParams l1{"l1d", 48 * kiB, 12, ticksFromNs(2.5)};
    CacheParams l2{"l2", 2 * miB, 16, ticksFromNs(8.0)};
    CacheParams llc{"llc", 60 * miB, 15, ticksFromNs(22.0)};

    /** LLC-miss handling: CHA/home-agent and mesh hop to the memory
     *  dispatch point (the return path is folded in as well). */
    Tick uncoreLatency = ticksFromNs(12.0);

    /** Store-buffer drain to the uncore for NT stores. */
    Tick ntDispatchLatency = ticksFromNs(6.0);

    bool prefetchEnabled = false;
    std::uint32_t prefetchDegree = 8;
    std::uint32_t prefetchStreams = 16;

    /** Extra home-agent handshake paid by a demand miss to a recently
     *  flushed line, on nodes with NumaNode::flushHandshake. */
    Tick flushHandshakePenalty = ticksFromNs(70.0);

    /**
     * Optional per-core DTLB model (off by default: the paper's
     * figures are reproducible without it, but it supplies the
     * page-walk cost that penalizes small random blocks -- see the
     * ablation bench). When enabled, every access pays an extra
     * charge on an L1-TLB miss (STLB hit) or a full page walk.
     */
    bool tlbEnabled = false;
    std::uint32_t l1TlbEntries = 64;
    std::uint32_t l2TlbEntries = 1536;
    Tick l2TlbLatency = ticksFromNs(4.0);
    Tick pageWalkLatency = ticksFromNs(60.0);
};

/** Aggregated prefetcher counters. */
struct PrefetchStats
{
    std::uint64_t issued = 0;
    std::uint64_t usefulHits = 0;
};

/** Poison bookkeeping of the hierarchy (faults enabled only). */
struct HierarchyRasStats
{
    std::uint64_t poisonedFills = 0; //!< poisoned lines installed
    std::uint64_t poisonedHits = 0;  //!< hits that served poisoned data
};

/**
 * The cache hierarchy shared by all cores of one socket, routing
 * misses to memory devices through the NUMA space.
 *
 * Timing protocol: operations are issued at a caller-provided tick
 * @p at (>= the event queue's current tick; workload threads run
 * slightly ahead of global time while hitting in their caches). When
 * the operation resolves without a memory access, the completion tick
 * is *returned* and the callback is not invoked; otherwise the
 * callback fires at completion.
 */
class CacheHierarchy
{
  public:
    using Done = InlineCallback<void(Tick)>;

    CacheHierarchy(EventQueue &eq, NumaSpace &numa, HierarchyParams params);

    /** Demand load of one cacheline. @p span is the optional tracing
     *  span of the access (null = untraced; attached to the memory
     *  request on a miss). */
    std::optional<Tick> load(std::uint16_t core, Addr paddr, Tick at,
                             Done cb, TraceSpan *span = nullptr);

    /** Temporal store (write-allocate, RFO on miss). */
    std::optional<Tick> store(std::uint16_t core, Addr paddr, Tick at,
                              Done cb, TraceSpan *span = nullptr);

    /**
     * Full-line non-temporal store: invalidates any cached copy and
     * posts the line to memory.
     * @param onAccept  fires when the write is posted (WC buffer can
     *                  be released; backpressured by the target's
     *                  posted-queue depth)
     * @param onDrained fires at global observability (what an sfence
     *                  waits for: iMC drain, or the CXL S2M NDR)
     */
    void ntStore(std::uint16_t core, Addr paddr, Tick at, Done onAccept,
                 Done onDrained, TraceSpan *span = nullptr);

    /** Cache-bypassing read (movdir64B source side); no fill. */
    void uncachedRead(std::uint16_t core, Addr paddr, std::uint32_t size,
                      Tick at, Done cb);

    /** clflush: evict everywhere; cb when dirty data reaches memory. */
    std::optional<Tick> flush(std::uint16_t core, Addr paddr, Tick at,
                              Done cb);

    /** clwb: write dirty data back but keep a clean copy. */
    std::optional<Tick> clwb(std::uint16_t core, Addr paddr, Tick at,
                             Done cb);

    void setPrefetch(bool on) { params_.prefetchEnabled = on; }
    bool prefetchEnabled() const { return params_.prefetchEnabled; }

    /** Drop all cached state (between experiment repetitions). */
    void flushAllCaches();

    /**
     * Fill the LLC with Modified lines from @p buf (an initialization
     * shortcut to the steady state of a store-heavy workload, where
     * every LLC fill displaces a dirty victim and produces writeback
     * traffic). No timing events are generated; displaced lines are
     * silently dropped.
     */
    void primeLlcDirty(const NumaBuffer &buf, std::uint16_t owner);

    const HierarchyParams &params() const { return params_; }
    const CacheStats &l1Stats(std::uint16_t core) const;
    const CacheStats &l2Stats(std::uint16_t core) const;
    const CacheStats &llcStats() const { return llc_->stats(); }
    const PrefetchStats &prefetchStats() const { return pfStats_; }

    /** TLB counters (all cores; zero when the TLB is disabled). */
    std::uint64_t tlbWalks() const { return tlbWalks_; }
    std::uint64_t stlbHits() const { return stlbHits_; }

    NumaSpace &numa() { return numa_; }
    EventQueue &eventQueue() { return eq_; }

    /** Wire up fault injection (poison tracking); nullptr disables. */
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

    /** Sink fired with the physical address of every poison-consuming
     *  fill -- feeds the chaos layer's per-page error ledger. */
    void
    setPoisonSink(std::function<void(Addr, Tick)> sink)
    {
        poisonSink_ = std::move(sink);
    }

    /** Wire up request-lifecycle tracing; nullptr disables (the
     *  default: cores never open spans, devices see null spans). */
    void setTracer(RequestTracer *t) { tracer_ = t; }

    /**
     * Attach a latency-accounting station covering the lookup path
     * (L1/L2/LLC latency plus the uncore hop on a miss). Demand loads
     * and uncached reads dispatched to memory while a station is
     * attached are flagged for bracketed latency-stack accounting
     * downstream. nullptr disables (the default).
     */
    void setStation(AccountedStation *st) { station_ = st; }

    /** The tracer cores sample spans from (nullptr = tracing off). */
    RequestTracer *tracer() const { return tracer_; }

    /**
     * Wire up the host bridge's QoS throttle: issues targeting
     * @p node (the CXL device reporting DevLoad) are paced by
     * @p throttle. nullptr disables (the default: zero overhead,
     * bit-identical timing).
     */
    void
    setQosThrottle(HostThrottle *throttle, NodeId node)
    {
        qosThrottle_ = throttle;
        qosNode_ = node;
    }

    /**
     * Pacing delay for one line issued by @p core toward @p paddr at
     * @p at; 0 unless a throttle is wired up and the address routes
     * to the throttled node.
     */
    Tick
    qosIssueDelay(std::uint16_t core, Addr paddr, Tick at)
    {
        if (!qosThrottle_ || nodeOfPaddr(paddr) != qosNode_)
            return 0;
        return qosThrottle_->issueDelay(core, at);
    }

    /**
     * Poison status of the most recent data delivery (a load hit on a
     * poisoned line, or a fill from a poisoned memory read). The
     * consumer (HwThread) takes it immediately after the hierarchy
     * returns / invokes the completion callback; taking clears it.
     * Completion chains run synchronously within one event, so the
     * flag cannot be interleaved by another access.
     */
    bool
    takeDeliveryPoison()
    {
        const bool p = deliveryPoisoned_;
        deliveryPoisoned_ = false;
        return p;
    }

    const HierarchyRasStats &rasStats() const { return rasStats_; }

    /** Poisoned lines currently cached (tests / monitoring). */
    std::size_t poisonedLinesCached() const
    {
        return poisonedLines_.size();
    }

  private:
    struct Stream
    {
        std::uint64_t nextLine = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    void fillL1(std::uint16_t core, std::uint64_t la, LineState st,
                Tick at);
    void fillL2(std::uint16_t core, std::uint64_t la, LineState st,
                Tick at, bool prefetched = false);
    void fillLlc(std::uint16_t core, std::uint64_t la, LineState st,
                 Tick at);

    /** Fetch a line from memory and fill the hierarchy. @p issued is
     *  the tick the access entered the hierarchy (latency accounting);
     *  @p attrib flags the request for the bracketed latency stack. */
    void missToMemory(std::uint16_t core, std::uint64_t la, Tick dispatch,
                      bool rfo, Done cb, TraceSpan *span = nullptr,
                      bool attrib = false, Tick issued = 0);

    /** Fire-and-forget dirty eviction to the line's home device. */
    void writebackLine(std::uint64_t la, std::uint16_t source, Tick at,
                       Done cb = nullptr);

    /** Stream-prefetcher observation hook (L2 miss / prefetch hit). */
    void observeForPrefetch(std::uint16_t core, std::uint64_t la, Tick at);

    /** Address-translation charge for one access (0 on an L1-TLB
     *  hit); updates the per-core TLB state. */
    Tick tlbCharge(std::uint16_t core, Addr paddr);

    /** Mark the current delivery poisoned if @p la carries poison. */
    void
    notePoisonHit(std::uint64_t la)
    {
        if (poisonedLines_.empty() || poisonedLines_.count(la) == 0)
            return;
        rasStats_.poisonedHits++;
        deliveryPoisoned_ = true;
    }

    /** Drop poison tracking for @p la (evicted / overwritten). */
    void
    clearPoison(std::uint64_t la)
    {
        if (!poisonedLines_.empty())
            poisonedLines_.erase(la);
    }

    EventQueue &eq_;
    NumaSpace &numa_;
    HierarchyParams params_;

    std::vector<SetAssocCache> l1_;
    std::vector<SetAssocCache> l2_;
    std::unique_ptr<SetAssocCache> llc_;

    /** Per-core TLBs, reusing the tag-array machinery (one "line"
     *  per page translation). Empty when disabled. */
    std::vector<SetAssocCache> l1Tlb_;
    std::vector<SetAssocCache> l2Tlb_;
    std::uint64_t tlbWalks_ = 0;
    std::uint64_t stlbHits_ = 0;

    std::vector<std::vector<Stream>> streams_; //!< per core
    std::unordered_set<std::uint64_t> prefetchInFlight_;
    std::unordered_set<std::uint64_t> recentlyFlushed_;
    PrefetchStats pfStats_;
    std::uint64_t streamClock_ = 0;

    HostThrottle *qosThrottle_ = nullptr;
    NodeId qosNode_ = 0;

    RequestTracer *tracer_ = nullptr;

    AccountedStation *station_ = nullptr;

    FaultInjector *faults_ = nullptr;
    std::function<void(Addr, Tick)> poisonSink_;
    /** Cached lines whose data carries poison from a faulty read. */
    std::unordered_set<std::uint64_t> poisonedLines_;
    bool deliveryPoisoned_ = false;
    HierarchyRasStats rasStats_;
};

} // namespace cxlmemo

#endif // CXLMEMO_CACHE_HIERARCHY_HH
