#include "cache/cache.hh"

#include <bit>

namespace cxlmemo
{

namespace
{

std::uint32_t
roundDownPow2(std::uint32_t v)
{
    CXLMEMO_ASSERT(v > 0, "pow2 of zero");
    return std::uint32_t(1) << (31 - std::countl_zero(v));
}

} // namespace

SetAssocCache::SetAssocCache(CacheParams params)
    : params_(std::move(params))
{
    CXLMEMO_ASSERT(params_.assoc > 0, "zero associativity");
    CXLMEMO_ASSERT(params_.sizeBytes >= cachelineBytes * params_.assoc,
                   "cache smaller than one set");
    const auto raw_sets = static_cast<std::uint32_t>(
        params_.sizeBytes / (cachelineBytes * params_.assoc));
    // Power-of-two sets keep indexing a mask, like real hardware.
    numSets_ = roundDownPow2(raw_sets);
    lines_.resize(static_cast<std::size_t>(numSets_) * params_.assoc);
}

std::uint32_t
SetAssocCache::setOf(std::uint64_t lineAddr) const
{
    // Mix the node bits (bit 34+ of the line address) into the index
    // so lines from different NUMA nodes do not systematically alias.
    const std::uint64_t mixed = lineAddr ^ (lineAddr >> 17);
    return static_cast<std::uint32_t>(mixed & (numSets_ - 1));
}

SetAssocCache::Line *
SetAssocCache::find(std::uint64_t lineAddr)
{
    const std::uint32_t set = setOf(lineAddr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (line.state != LineState::Invalid && line.tag == lineAddr) {
            line.lastUse = ++useClock_;
            return &line;
        }
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::peek(std::uint64_t lineAddr) const
{
    const std::uint32_t set = setOf(lineAddr);
    const Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        const Line &line = base[w];
        if (line.state != LineState::Invalid && line.tag == lineAddr)
            return &line;
    }
    return nullptr;
}

std::optional<SetAssocCache::Victim>
SetAssocCache::insert(std::uint64_t lineAddr, LineState state,
                      std::uint16_t owner, bool prefetched)
{
    CXLMEMO_ASSERT(state != LineState::Invalid, "inserting invalid line");
    const std::uint32_t set = setOf(lineAddr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];

    Line *slot = nullptr;
    Line *lru = &base[0];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (line.state == LineState::Invalid) {
            slot = &line;
            break;
        }
        if (line.state != LineState::Invalid && line.tag == lineAddr) {
            // Re-insert of a present line: just merge the state.
            line.state = state;
            line.lastUse = ++useClock_;
            line.owner = owner;
            return std::nullopt;
        }
        if (line.lastUse < lru->lastUse)
            lru = &line;
    }

    std::optional<Victim> victim;
    if (!slot) {
        victim = Victim{lru->tag, lru->state, lru->owner};
        stats_.evictions++;
        if (lru->state == LineState::Modified)
            stats_.dirtyEvictions++;
        slot = lru;
    }

    slot->tag = lineAddr;
    slot->state = state;
    slot->lastUse = ++useClock_;
    slot->owner = owner;
    slot->prefetched = prefetched;
    return victim;
}

LineState
SetAssocCache::invalidate(std::uint64_t lineAddr)
{
    const std::uint32_t set = setOf(lineAddr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (line.state != LineState::Invalid && line.tag == lineAddr) {
            const LineState prior = line.state;
            line.state = LineState::Invalid;
            return prior;
        }
    }
    return LineState::Invalid;
}

void
SetAssocCache::flushAll()
{
    for (Line &line : lines_)
        line.state = LineState::Invalid;
}

} // namespace cxlmemo
