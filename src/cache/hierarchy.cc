#include "cache/hierarchy.hh"

#include <utility>

#include "sim/trace.hh"

namespace cxlmemo
{

namespace
{

constexpr std::uint64_t
lineOf(Addr paddr)
{
    return paddr >> 6;
}

constexpr Addr
paddrOfLine(std::uint64_t la)
{
    return la << 6;
}

} // namespace

CacheHierarchy::CacheHierarchy(EventQueue &eq, NumaSpace &numa,
                               HierarchyParams params)
    : eq_(eq), numa_(numa), params_(std::move(params))
{
    CXLMEMO_ASSERT(params_.numCores > 0, "hierarchy with no cores");
    l1_.reserve(params_.numCores);
    l2_.reserve(params_.numCores);
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        CacheParams p1 = params_.l1;
        p1.name = "core" + std::to_string(c) + "." + p1.name;
        l1_.emplace_back(std::move(p1));
        CacheParams p2 = params_.l2;
        p2.name = "core" + std::to_string(c) + "." + p2.name;
        l2_.emplace_back(std::move(p2));
    }
    llc_ = std::make_unique<SetAssocCache>(params_.llc);
    if (params_.tlbEnabled) {
        // Entry count is encoded as sizeBytes / 64 in the tag array.
        const CacheParams l1tlb{"dtlb", params_.l1TlbEntries * 64ull, 4,
                                0};
        const CacheParams l2tlb{"stlb", params_.l2TlbEntries * 64ull, 12,
                                0};
        for (std::uint32_t c = 0; c < params_.numCores; ++c) {
            l1Tlb_.emplace_back(l1tlb);
            l2Tlb_.emplace_back(l2tlb);
        }
    }
    streams_.assign(params_.numCores,
                    std::vector<Stream>(params_.prefetchStreams));
}

const CacheStats &
CacheHierarchy::l1Stats(std::uint16_t core) const
{
    return l1_.at(core).stats();
}

const CacheStats &
CacheHierarchy::l2Stats(std::uint16_t core) const
{
    return l2_.at(core).stats();
}

void
CacheHierarchy::writebackLine(std::uint64_t la, std::uint16_t source,
                              Tick at, Done cb)
{
    at = std::max(at, eq_.curTick());
    // Writebacks carry a full data flit toward the device; the QoS
    // throttle paces them together with the NT-store stream.
    at += qosIssueDelay(source, paddrOfLine(la), at);
    eq_.schedule(at,
                 [this, la, source, cb = std::move(cb)]() mutable {
        Addr local = 0;
        MemoryDevice &dev = numa_.route(paddrOfLine(la), local);
        MemRequest req;
        req.addr = local;
        req.size = cachelineBytes;
        req.cmd = MemCmd::Write;
        req.source = source;
        if (cb)
            req.onComplete = std::move(cb);
        dev.access(std::move(req));
    });
}

void
CacheHierarchy::fillL1(std::uint16_t core, std::uint64_t la, LineState st,
                       Tick at)
{
    auto victim = l1_[core].insert(la, st, core);
    if (victim && victim->state == LineState::Modified) {
        // Merge dirty data down into L2 (inclusive: normally present).
        if (auto *l2line = l2_[core].find(victim->lineAddr)) {
            l2line->state = LineState::Modified;
        } else {
            writebackLine(victim->lineAddr, core, at);
        }
    }
}

void
CacheHierarchy::fillL2(std::uint16_t core, std::uint64_t la, LineState st,
                       Tick at, bool prefetched)
{
    auto victim = l2_[core].insert(la, st, core, prefetched);
    if (!victim)
        return;
    // L1 is a subset of L2: displace the line upstairs as well.
    const LineState l1st = l1_[core].invalidate(victim->lineAddr);
    const bool dirty = victim->state == LineState::Modified
                       || l1st == LineState::Modified;
    if (auto *llcline = llc_->find(victim->lineAddr)) {
        if (dirty)
            llcline->state = LineState::Modified;
    } else if (dirty) {
        writebackLine(victim->lineAddr, core, at);
    }
}

void
CacheHierarchy::fillLlc(std::uint16_t core, std::uint64_t la, LineState st,
                        Tick at)
{
    auto victim = llc_->insert(la, st, core);
    if (!victim)
        return;
    // Inclusive LLC: evicting here removes the line machine-wide --
    // including any poison the line carried.
    clearPoison(victim->lineAddr);
    const std::uint16_t owner = victim->owner;
    const LineState l1st = l1_[owner].invalidate(victim->lineAddr);
    const LineState l2st = l2_[owner].invalidate(victim->lineAddr);
    const bool dirty = victim->state == LineState::Modified
                       || l1st == LineState::Modified
                       || l2st == LineState::Modified;
    if (dirty)
        writebackLine(victim->lineAddr, core, at);
}

void
CacheHierarchy::missToMemory(std::uint16_t core, std::uint64_t la,
                             Tick dispatch, bool rfo, Done cb,
                             TraceSpan *span, bool attrib, Tick issued)
{
    if (!recentlyFlushed_.empty() && recentlyFlushed_.erase(la) > 0
        && numa_.node(nodeOfPaddr(paddrOfLine(la))).flushHandshake) {
        dispatch += params_.flushHandshakePenalty;
    }
    // Lookup latency plus the uncore hop: all of it is pipeline delay
    // (service), none of it contention.
    if (station_)
        station_->passThrough(0, dispatch - issued,
                              dispatch - issued, attrib, dispatch);
    eq_.schedule(dispatch, [this, core, la, rfo, span, attrib,
                            cb = std::move(cb)]() mutable {
        Addr local = 0;
        MemoryDevice &dev = numa_.route(paddrOfLine(la), local);
        MemRequest req;
        req.addr = local;
        req.size = cachelineBytes;
        req.cmd = MemCmd::Read;
        req.source = core;
        req.span = span;
        req.attrib = attrib;
        req.onComplete = [this, core, la, rfo,
                          cb = std::move(cb)](Tick t) {
            // The memory device arms poison on the response just
            // before this callback runs; absorbing it here makes the
            // cached copy a tracked poisoned line, and this delivery
            // a poisoned one for the requesting thread.
            const bool poisoned = faults_ && faults_->consumePoison();
            if (poisoned) {
                poisonedLines_.insert(la);
                rasStats_.poisonedFills++;
                faults_->stats().poisonConsumed++;
                if (poisonSink_)
                    poisonSink_(paddrOfLine(la), t);
            }
            fillLlc(core, la, LineState::Exclusive, t);
            fillL2(core, la, LineState::Exclusive, t);
            fillL1(core, la,
                   rfo ? LineState::Modified : LineState::Exclusive, t);
            if (poisoned)
                deliveryPoisoned_ = true;
            if (cb)
                cb(t);
        };
        dev.access(std::move(req));
    });
}

Tick
CacheHierarchy::tlbCharge(std::uint16_t core, Addr paddr)
{
    if (!params_.tlbEnabled)
        return 0;
    const std::uint64_t page = paddr / pageBytes;
    if (l1Tlb_[core].find(page))
        return 0;
    if (l2Tlb_[core].find(page)) {
        ++stlbHits_;
        l1Tlb_[core].insert(page, LineState::Exclusive, core);
        return params_.l2TlbLatency;
    }
    ++tlbWalks_;
    l2Tlb_[core].insert(page, LineState::Exclusive, core);
    l1Tlb_[core].insert(page, LineState::Exclusive, core);
    return params_.pageWalkLatency;
}

void
CacheHierarchy::observeForPrefetch(std::uint16_t core, std::uint64_t la,
                                   Tick at)
{
    auto &table = streams_[core];
    Stream *match = nullptr;
    Stream *lru = &table[0];
    for (Stream &s : table) {
        if (s.valid && s.nextLine == la) {
            match = &s;
            break;
        }
        if (!s.valid || s.lastUse < lru->lastUse)
            lru = &s;
    }
    if (!match) {
        // New potential stream: arm it, fetch nothing yet.
        lru->valid = true;
        lru->nextLine = la + 1;
        lru->lastUse = ++streamClock_;
        return;
    }
    match->nextLine = la + 1;
    match->lastUse = ++streamClock_;

    for (std::uint32_t d = 1; d <= params_.prefetchDegree; ++d) {
        const std::uint64_t target = la + d;
        if (l2_[core].peek(target) || llc_->peek(target))
            continue;
        if (!prefetchInFlight_.insert(target).second)
            continue;
        pfStats_.issued++;
        eq_.schedule(at + params_.uncoreLatency,
                     [this, core, target] {
            Addr local = 0;
            MemoryDevice &dev = numa_.route(paddrOfLine(target), local);
            MemRequest req;
            req.addr = local;
            req.size = cachelineBytes;
            req.cmd = MemCmd::Prefetch;
            req.source = core;
            req.onComplete = [this, core, target](Tick t) {
                prefetchInFlight_.erase(target);
                // A prefetch fill absorbs poison like a demand fill;
                // a later demand hit surfaces it to the consumer.
                if (faults_ && faults_->consumePoison()) {
                    poisonedLines_.insert(target);
                    rasStats_.poisonedFills++;
                    faults_->stats().poisonConsumed++;
                    if (poisonSink_)
                        poisonSink_(paddrOfLine(target), t);
                }
                fillLlc(core, target, LineState::Exclusive, t);
                fillL2(core, target, LineState::Exclusive, t, true);
            };
            dev.access(std::move(req));
        });
    }
}

std::optional<Tick>
CacheHierarchy::load(std::uint16_t core, Addr paddr, Tick at, Done cb,
                     TraceSpan *span)
{
    const Tick issued = at;
    at += tlbCharge(core, paddr);
    RequestTracer::mark(span, TraceStage::Cache, at);
    const std::uint64_t la = lineOf(paddr);
    SetAssocCache &l1 = l1_[core];
    SetAssocCache &l2 = l2_[core];

    Tick lat = params_.l1.latency;
    if (l1.find(la)) {
        l1.stats().hits++;
        notePoisonHit(la);
        if (station_)
            station_->passThrough(0, at + lat - issued,
                                  at + lat - issued, true, at + lat);
        return at + lat;
    }
    l1.stats().misses++;

    lat += params_.l2.latency;
    if (auto *line = l2.find(la)) {
        l2.stats().hits++;
        if (params_.prefetchEnabled && line->prefetched) {
            line->prefetched = false;
            pfStats_.usefulHits++;
            observeForPrefetch(core, la, at + lat);
        }
        fillL1(core, la,
               line->state == LineState::Modified ? LineState::Modified
                                                  : LineState::Exclusive,
               at + lat);
        notePoisonHit(la);
        if (station_)
            station_->passThrough(0, at + lat - issued,
                                  at + lat - issued, true, at + lat);
        return at + lat;
    }
    l2.stats().misses++;
    if (params_.prefetchEnabled)
        observeForPrefetch(core, la, at + lat);

    lat += params_.llc.latency;
    if (auto *line = llc_->find(la)) {
        llc_->stats().hits++;
        const LineState st = line->state == LineState::Modified
                                 ? LineState::Modified
                                 : LineState::Exclusive;
        fillL2(core, la, st, at + lat);
        fillL1(core, la, st, at + lat);
        notePoisonHit(la);
        if (station_)
            station_->passThrough(0, at + lat - issued,
                                  at + lat - issued, true, at + lat);
        return at + lat;
    }
    llc_->stats().misses++;

    missToMemory(core, la, at + lat + params_.uncoreLatency, false,
                 std::move(cb), span, /*attrib=*/station_ != nullptr,
                 issued);
    return std::nullopt;
}

std::optional<Tick>
CacheHierarchy::store(std::uint16_t core, Addr paddr, Tick at, Done cb,
                      TraceSpan *span)
{
    const Tick issued = at;
    at += tlbCharge(core, paddr);
    RequestTracer::mark(span, TraceStage::Cache, at);
    const std::uint64_t la = lineOf(paddr);
    SetAssocCache &l1 = l1_[core];
    SetAssocCache &l2 = l2_[core];

    Tick lat = params_.l1.latency;
    if (auto *line = l1.find(la)) {
        l1.stats().hits++;
        line->state = LineState::Modified;
        if (station_)
            station_->passThrough(0, at + lat - issued,
                                  at + lat - issued, false, at + lat);
        return at + lat;
    }
    l1.stats().misses++;

    lat += params_.l2.latency;
    if (auto *line = l2.find(la)) {
        l2.stats().hits++;
        const bool was_dirty = line->state == LineState::Modified;
        fillL1(core, la, LineState::Modified, at + lat);
        if (was_dirty)
            line->state = LineState::Exclusive; // dirtiness moved to L1
        if (station_)
            station_->passThrough(0, at + lat - issued,
                                  at + lat - issued, false, at + lat);
        return at + lat;
    }
    l2.stats().misses++;
    if (params_.prefetchEnabled)
        observeForPrefetch(core, la, at + lat);

    lat += params_.llc.latency;
    if (llc_->find(la)) {
        llc_->stats().hits++;
        fillL2(core, la, LineState::Exclusive, at + lat);
        fillL1(core, la, LineState::Modified, at + lat);
        if (station_)
            station_->passThrough(0, at + lat - issued,
                                  at + lat - issued, false, at + lat);
        return at + lat;
    }
    llc_->stats().misses++;

    // Read-for-ownership: the line is fetched from memory before the
    // store can retire -- the behaviour the paper highlights as the
    // cause of poor temporal-store throughput on CXL.
    missToMemory(core, la, at + lat + params_.uncoreLatency, true,
                 std::move(cb), span, /*attrib=*/false, issued);
    return std::nullopt;
}

void
CacheHierarchy::ntStore(std::uint16_t core, Addr paddr, Tick at,
                        Done onAccept, Done onDrained, TraceSpan *span)
{
    const Tick issued = at;
    at += tlbCharge(core, paddr);
    const std::uint64_t la = lineOf(paddr);
    // A full-line NT store overwrites the line: cached copies are
    // dropped without writeback, and fresh data scrubs any poison.
    l1_[core].invalidate(la);
    l2_[core].invalidate(la);
    llc_->invalidate(la);
    clearPoison(la);

    const Tick dispatch =
        at + params_.ntDispatchLatency + params_.uncoreLatency;
    if (station_)
        station_->passThrough(0, dispatch - issued,
                              dispatch - issued, false, dispatch);
    eq_.schedule(dispatch,
                 [this, core, la, span, onAccept = std::move(onAccept),
                  onDrained = std::move(onDrained)]() mutable {
        Addr local = 0;
        MemoryDevice &dev = numa_.route(paddrOfLine(la), local);
        MemRequest req;
        req.addr = local;
        req.size = cachelineBytes;
        req.cmd = MemCmd::NtWrite;
        req.source = core;
        req.span = span;
        req.onAccept = std::move(onAccept);
        req.onComplete = std::move(onDrained);
        dev.access(std::move(req));
    });
}

void
CacheHierarchy::uncachedRead(std::uint16_t core, Addr paddr,
                             std::uint32_t size, Tick at, Done cb)
{
    const Tick issued = at;
    at += tlbCharge(core, paddr);
    const Tick dispatch =
        at + params_.l1.latency + params_.uncoreLatency;
    const bool attrib = station_ != nullptr;
    if (station_)
        station_->passThrough(0, dispatch - issued,
                              dispatch - issued, attrib, dispatch);
    eq_.schedule(dispatch, [this, core, paddr, size, attrib,
                            cb = std::move(cb)]() mutable {
        Addr local = 0;
        MemoryDevice &dev = numa_.route(paddr, local);
        MemRequest req;
        req.addr = local;
        req.size = size;
        req.cmd = MemCmd::Read;
        req.source = core;
        req.attrib = attrib;
        if (cb)
            req.onComplete = std::move(cb);
        dev.access(std::move(req));
    });
}

std::optional<Tick>
CacheHierarchy::flush(std::uint16_t core, Addr paddr, Tick at, Done cb)
{
    const std::uint64_t la = lineOf(paddr);
    recentlyFlushed_.insert(la);
    clearPoison(la);
    const LineState s1 = l1_[core].invalidate(la);
    const LineState s2 = l2_[core].invalidate(la);
    const LineState sl = llc_->invalidate(la);
    const bool dirty = s1 == LineState::Modified
                       || s2 == LineState::Modified
                       || sl == LineState::Modified;
    const Tick lookup = at + params_.l1.latency + params_.l2.latency
                        + params_.llc.latency;
    if (!dirty)
        return lookup;
    writebackLine(la, core, lookup + params_.uncoreLatency,
                  std::move(cb));
    return std::nullopt;
}

std::optional<Tick>
CacheHierarchy::clwb(std::uint16_t core, Addr paddr, Tick at, Done cb)
{
    const std::uint64_t la = lineOf(paddr);
    bool dirty = false;
    if (auto *l = l1_[core].find(la); l && l->state == LineState::Modified) {
        l->state = LineState::Exclusive;
        dirty = true;
    }
    if (auto *l = l2_[core].find(la); l && l->state == LineState::Modified) {
        l->state = LineState::Exclusive;
        dirty = true;
    }
    if (auto *l = llc_->find(la); l && l->state == LineState::Modified) {
        l->state = LineState::Exclusive;
        dirty = true;
    }
    const Tick lookup = at + params_.l1.latency + params_.l2.latency
                        + params_.llc.latency;
    if (!dirty)
        return lookup;
    writebackLine(la, core, lookup + params_.uncoreLatency,
                  std::move(cb));
    return std::nullopt;
}

void
CacheHierarchy::primeLlcDirty(const NumaBuffer &buf, std::uint16_t owner)
{
    const std::uint64_t lines = buf.size() / cachelineBytes;
    for (std::uint64_t i = 0; i < lines; ++i) {
        const Addr paddr = buf.translate(i * cachelineBytes);
        // Displaced victims are dropped: priming models pre-existing
        // dirty occupancy, not traffic.
        (void)llc_->insert(lineOf(paddr), LineState::Modified, owner);
    }
}

void
CacheHierarchy::flushAllCaches()
{
    for (auto &c : l1_)
        c.flushAll();
    for (auto &c : l2_)
        c.flushAll();
    llc_->flushAll();
    for (auto &c : l1Tlb_)
        c.flushAll();
    for (auto &c : l2Tlb_)
        c.flushAll();
    for (auto &table : streams_)
        for (Stream &s : table)
            s.valid = false;
    prefetchInFlight_.clear();
    recentlyFlushed_.clear();
    poisonedLines_.clear();
    deliveryPoisoned_ = false;
}

} // namespace cxlmemo
