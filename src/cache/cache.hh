/**
 * @file
 * Set-associative cache tag array with MESI-lite line states.
 *
 * This is a functional tag store with LRU replacement; timing is
 * applied by the CacheHierarchy that owns the levels. States are the
 * subset of MESI the studied workloads exercise: threads in this
 * framework do not write-share lines, so S behaves like E on a store
 * (no cross-core invalidation round is modelled; documented in
 * DESIGN.md).
 */

#ifndef CXLMEMO_CACHE_CACHE_HH
#define CXLMEMO_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cxlmemo
{

/** Cacheline coherence state. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 48 * kiB;
    std::uint32_t assoc = 12;
    /** Incremental lookup/hit latency contributed by this level. */
    Tick latency = ticksFromNs(2.5);
};

/** Hit/miss counters for one cache level. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    double
    hitRate() const
    {
        const auto total = hits + misses;
        return total ? static_cast<double>(hits)
                       / static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * The tag array of one cache. Addresses are line-granular
 * ("line address" = physical address >> 6).
 */
class SetAssocCache
{
  public:
    struct Line
    {
        std::uint64_t tag = ~std::uint64_t(0);
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
        /** Core that installed the line (inclusive-directory hint so
         *  back-invalidation does not scan every core). */
        std::uint16_t owner = 0;
        /** Set by the prefetcher; cleared on first demand hit. */
        bool prefetched = false;
    };

    /** A valid line displaced by insert(). */
    struct Victim
    {
        std::uint64_t lineAddr;
        LineState state;
        std::uint16_t owner;
    };

    explicit SetAssocCache(CacheParams params);

    /** @return the line if present (and update LRU), else nullptr. */
    Line *find(std::uint64_t lineAddr);

    /** Presence probe without LRU update. */
    const Line *peek(std::uint64_t lineAddr) const;

    /**
     * Install a line, possibly displacing the set's LRU victim.
     * @return the displaced valid line, if any.
     */
    std::optional<Victim> insert(std::uint64_t lineAddr, LineState state,
                                 std::uint16_t owner,
                                 bool prefetched = false);

    /** Remove a line; @return its prior state. */
    LineState invalidate(std::uint64_t lineAddr);

    const CacheParams &params() const { return params_; }
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

    std::uint32_t numSets() const { return numSets_; }

    /** Drop every line (used between experiment repetitions). */
    void flushAll();

  private:
    std::uint32_t setOf(std::uint64_t lineAddr) const;

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; //!< numSets_ * assoc, set-major
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace cxlmemo

#endif // CXLMEMO_CACHE_CACHE_HH
