/**
 * @file
 * Simulator-engine performance benchmarks (Google Benchmark): how
 * fast the framework itself executes events, channel transactions and
 * cache lookups. These bound how much simulated time the figure
 * benches can afford and guard against performance regressions in
 * the hot paths.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "cpu/streams.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "system/machine.hh"

using namespace cxlmemo;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < batch; ++i)
            eq.schedule(static_cast<Tick>(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void
BM_RngDraws(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1000003));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngDraws);

void
BM_ZipfianDraws(benchmark::State &state)
{
    Rng rng(7);
    ZipfianGenerator z(1'000'000);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.next(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianDraws);

void
BM_DramChannelRandomReads(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        DramChannel ch(eq, DramChannelParams{});
        Rng rng(3);
        std::uint64_t completed = 0;
        std::function<void()> issue = [&] {
            if (completed >= 20000)
                return;
            MemRequest r;
            r.addr = rng.below(1u << 26) & ~Addr(63);
            r.size = cachelineBytes;
            r.cmd = MemCmd::Read;
            r.onComplete = [&](Tick) {
                ++completed;
                issue();
            };
            ch.access(std::move(r));
        };
        for (int i = 0; i < 32; ++i)
            issue();
        eq.run();
        benchmark::DoNotOptimize(completed);
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_DramChannelRandomReads);

void
BM_EndToEndSequentialLoads(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Machine m(Testbed::SingleSocketCxl);
        NumaBuffer buf = m.numa().alloc(
            64 * miB, MemPolicy::membind(m.localNode()));
        auto t = m.makeThread(0);
        state.ResumeTiming();

        t->start(std::make_unique<SequentialStream>(
                     buf, 0, 64 * miB, 8 * miB, MemOp::Kind::Load),
                 0, nullptr);
        m.eq().run();
        benchmark::DoNotOptimize(t->stats().loads);
    }
    state.SetItemsProcessed(state.iterations() * (8 * miB / 64));
}
BENCHMARK(BM_EndToEndSequentialLoads);

} // namespace

BENCHMARK_MAIN();
