/**
 * @file
 * Simulator-engine performance benchmarks (Google Benchmark): how
 * fast the framework itself executes events, channel transactions and
 * cache lookups. These bound how much simulated time the figure
 * benches can afford and guard against performance regressions in
 * the hot paths.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/streams.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/histogram.hh"
#include "sim/pool.hh"
#include "sim/rng.hh"
#include "system/machine.hh"

using namespace cxlmemo;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < batch; ++i)
            eq.schedule(static_cast<Tick>(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

/**
 * Near-horizon scheduling: every event lands within the calendar
 * wheel (delays far below the ~2 us horizon), the pattern of cache,
 * DRAM and flit completions. Exercises the bucket append + lazy
 * window sort fast path.
 */
void
BM_EventQueueNearHorizon(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    struct Chain
    {
        EventQueue &eq;
        Rng &rng;
        std::uint64_t &left;
        int &sink;

        void
        fire()
        {
            ++sink;
            if (left-- > 32)
                eq.scheduleIn(1 + rng.below(256), [this] { fire(); });
        }
    };
    for (auto _ : state) {
        EventQueue eq;
        Rng rng(11);
        int sink = 0;
        std::uint64_t left = batch;
        // 32 self-rescheduling chains, each completion scheduling a
        // successor 1-256 ticks out, like a memory request pipeline.
        Chain chain{eq, rng, left, sink};
        for (int i = 0; i < 32; ++i)
            chain.fire();
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueNearHorizon)->Arg(65536);

/**
 * Far-horizon scheduling: delays beyond the wheel's coverage
 * (measurement timers, think-time arrivals), so every event takes the
 * spill min-heap path. The near/far ratio shows what the calendar
 * tiers buy.
 */
void
BM_EventQueueFarHorizon(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        Rng rng(11);
        int sink = 0;
        for (int i = 0; i < batch; ++i) {
            // ~4-8 us out: past the ~2.1 us wheel horizon.
            eq.schedule(ticksFromUs(4) + rng.below(ticksFromUs(4)),
                        [&sink] { ++sink; });
        }
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueFarHorizon)->Arg(65536);

/** Dispatch cost of the engine's callback type vs std::function for
 *  a capture that exceeds std::function's small-buffer size. */
void
BM_CallbackDispatchInline(benchmark::State &state)
{
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    std::uint64_t sink = 0;
    InlineCallback<void()> cb = [&sink, a, b, c, d] {
        sink += a + b + c + d;
    };
    for (auto _ : state) {
        cb();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CallbackDispatchInline);

void
BM_CallbackDispatchStdFunction(benchmark::State &state)
{
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    std::uint64_t sink = 0;
    std::function<void()> cb = [&sink, a, b, c, d] {
        sink += a + b + c + d;
    };
    for (auto _ : state) {
        cb();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CallbackDispatchStdFunction);

/** Construct + move + destroy cost: the lifecycle every event pays
 *  when a completion callback is handed down the memory hierarchy. */
void
BM_CallbackHandoffInline(benchmark::State &state)
{
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    for (auto _ : state) {
        InlineCallback<void()> cb = [&sink, a, b, c, d] {
            sink += a + b + c + d;
        };
        InlineCallback<void()> moved = std::move(cb);
        moved();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CallbackHandoffInline);

void
BM_CallbackHandoffStdFunction(benchmark::State &state)
{
    std::uint64_t sink = 0;
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    for (auto _ : state) {
        std::function<void()> cb = [&sink, a, b, c, d] {
            sink += a + b + c + d;
        };
        std::function<void()> moved = std::move(cb);
        moved();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CallbackHandoffStdFunction);

/* ---------------------- spill-cell allocator --------------------- */

/** One pooled spill cell per event: the cost a callback that carries
 *  a whole MemRequest pays for its heap cell (vs BM_HeapSpillCell,
 *  the global new/delete pair the pool replaced). */
void
BM_PoolSpillCell(benchmark::State &state)
{
    constexpr std::size_t bytes = 192; // a spilled completion capture
    for (auto _ : state) {
        void *p = poolAlloc(bytes);
        benchmark::DoNotOptimize(p);
        poolFree(p, bytes);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolSpillCell);

void
BM_HeapSpillCell(benchmark::State &state)
{
    constexpr std::size_t bytes = 192;
    for (auto _ : state) {
        void *p = ::operator new(bytes);
        benchmark::DoNotOptimize(p);
        ::operator delete(p);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapSpillCell);

/** Full lifecycle of a callback too big for the inline buffer --
 *  construct (pool alloc), move (pointer steal), invoke, destroy
 *  (pool free). Compare with BM_CallbackHandoffInline to see what a
 *  spill costs end to end. */
void
BM_CallbackHandoffSpilled(benchmark::State &state)
{
    std::uint64_t sink = 0;
    std::array<std::uint64_t, 12> big{};
    big[0] = 1;
    for (auto _ : state) {
        InlineCallback<void()> cb = [&sink, big] { sink += big[0]; };
        InlineCallback<void()> moved = std::move(cb);
        moved();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CallbackHandoffSpilled);

void
BM_RngDraws(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1000003));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngDraws);

void
BM_ZipfianDraws(benchmark::State &state)
{
    Rng rng(7);
    ZipfianGenerator z(1'000'000);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.next(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianDraws);

void
BM_DramChannelRandomReads(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        DramChannel ch(eq, DramChannelParams{});
        Rng rng(3);
        std::uint64_t completed = 0;
        std::function<void()> issue = [&] {
            if (completed >= 20000)
                return;
            MemRequest r;
            r.addr = rng.below(1u << 26) & ~Addr(63);
            r.size = cachelineBytes;
            r.cmd = MemCmd::Read;
            r.onComplete = [&](Tick) {
                ++completed;
                issue();
            };
            ch.access(std::move(r));
        };
        for (int i = 0; i < 32; ++i)
            issue();
        eq.run();
        benchmark::DoNotOptimize(completed);
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_DramChannelRandomReads);

void
BM_EndToEndSequentialLoads(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Machine m(Testbed::SingleSocketCxl);
        NumaBuffer buf = m.numa().alloc(
            64 * miB, MemPolicy::membind(m.localNode()));
        auto t = m.makeThread(0);
        state.ResumeTiming();

        t->start(std::make_unique<SequentialStream>(
                     buf, 0, 64 * miB, 8 * miB, MemOp::Kind::Load),
                 0, nullptr);
        m.eq().run();
        benchmark::DoNotOptimize(t->stats().loads);
    }
    state.SetItemsProcessed(state.iterations() * (8 * miB / 64));
}
BENCHMARK(BM_EndToEndSequentialLoads);

/* --------------------- flight-recorder overhead ------------------ */

void
BM_HistogramRecord(benchmark::State &state)
{
    LatencyHistogram h;
    Rng rng(5);
    for (auto _ : state) {
        h.record(100 + rng.below(1u << 20));
        benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(h);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void
BM_HistogramMerge(benchmark::State &state)
{
    LatencyHistogram a, b;
    Rng rng(6);
    for (int i = 0; i < 100000; ++i) {
        a.record(rng.below(1u << 24));
        b.record(rng.below(1u << 24));
    }
    for (auto _ : state) {
        LatencyHistogram m = a;
        m.merge(b);
        benchmark::DoNotOptimize(m.count());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramMerge);

/**
 * The acceptance bar for tracing: with --trace-sample 1/64 the
 * end-to-end run must stay within a few percent of the untraced
 * baseline (compare against BM_EndToEndSequentialLoads; arg 0 runs
 * the same machine with tracing off through the same code path).
 */
void
BM_EndToEndTracedLoads(benchmark::State &state)
{
    const auto sample = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        MachineOptions mo;
        mo.obs.traceSampleEvery = sample;
        Machine m(Testbed::SingleSocketCxl, mo);
        NumaBuffer buf = m.numa().alloc(
            64 * miB, MemPolicy::membind(m.localNode()));
        auto t = m.makeThread(0);
        state.ResumeTiming();

        t->start(std::make_unique<SequentialStream>(
                     buf, 0, 64 * miB, 8 * miB, MemOp::Kind::Load),
                 0, nullptr);
        m.eq().run();
        benchmark::DoNotOptimize(t->stats().loads);
    }
    state.SetItemsProcessed(state.iterations() * (8 * miB / 64));
}
BENCHMARK(BM_EndToEndTracedLoads)->Arg(0)->Arg(64)->Arg(1);

/* ------------------------ parallel engine ------------------------ */

/**
 * The fig. 3 shape the parallel engine targets: 32 cores streaming
 * loads at the CXL device. Arg = sim-threads (0 = the classic
 * single-queue engine; >= 1 = domain-partitioned). The interesting
 * ratios are arg 1 vs arg 0 (parallel-engine overhead on one worker,
 * the <= 5% regression budget) and arg N vs arg 1 (self-relative
 * speedup recorded in BENCH_parallel.json).
 */
void
BM_ParallelFig3Point(benchmark::State &state)
{
    const auto st = static_cast<std::uint32_t>(state.range(0));
    constexpr std::uint32_t cores = 32;
    constexpr std::uint64_t perThread = 4 * miB;
    for (auto _ : state) {
        state.PauseTiming();
        MachineOptions mo;
        mo.simThreads = st;
        Machine m(Testbed::SingleSocketCxl, mo);
        NumaBuffer buf = m.numa().alloc(
            std::uint64_t(cores) * perThread,
            MemPolicy::membind(m.cxlNode()));
        std::vector<std::unique_ptr<HwThread>> pool;
        for (std::uint32_t t = 0; t < cores; ++t)
            pool.push_back(m.makeThread(static_cast<std::uint16_t>(t)));
        state.ResumeTiming();

        for (std::uint32_t t = 0; t < cores; ++t)
            pool[t]->start(std::make_unique<SequentialStream>(
                               buf, std::uint64_t(t) * perThread,
                               perThread, perThread, MemOp::Kind::Load),
                           0, nullptr);
        m.run();
        benchmark::DoNotOptimize(pool[0]->stats().loads);
    }
    state.SetItemsProcessed(state.iterations() * cores
                            * (perThread / cachelineBytes));
}
BENCHMARK(BM_ParallelFig3Point)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

/**
 * Same shape on the local DDR5 path: 8 channel domains give the
 * engine more lanes than the single CXL device domain above.
 */
void
BM_ParallelLocalBwPoint(benchmark::State &state)
{
    const auto st = static_cast<std::uint32_t>(state.range(0));
    constexpr std::uint32_t cores = 32;
    constexpr std::uint64_t perThread = 4 * miB;
    for (auto _ : state) {
        state.PauseTiming();
        MachineOptions mo;
        mo.simThreads = st;
        Machine m(Testbed::SingleSocketCxl, mo);
        NumaBuffer buf = m.numa().alloc(
            std::uint64_t(cores) * perThread,
            MemPolicy::membind(m.localNode()));
        std::vector<std::unique_ptr<HwThread>> pool;
        for (std::uint32_t t = 0; t < cores; ++t)
            pool.push_back(m.makeThread(static_cast<std::uint16_t>(t)));
        state.ResumeTiming();

        for (std::uint32_t t = 0; t < cores; ++t)
            pool[t]->start(std::make_unique<SequentialStream>(
                               buf, std::uint64_t(t) * perThread,
                               perThread, perThread, MemOp::Kind::Load),
                           0, nullptr);
        m.run();
        benchmark::DoNotOptimize(pool[0]->stats().loads);
    }
    state.SetItemsProcessed(state.iterations() * cores
                            * (perThread / cachelineBytes));
}
BENCHMARK(BM_ParallelLocalBwPoint)
    ->Arg(0)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
