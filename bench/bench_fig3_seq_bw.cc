/**
 * @file
 * Figure 3 reproduction: sequential-access bandwidth vs thread count
 * for load / temporal store / non-temporal store on (a) 8-channel
 * local DDR5, (b) CXL memory, (c) 1-channel remote DDR5.
 */

#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "sim/sweep.hh"

using namespace cxlmemo;

int
main(int argc, char **argv)
{
    bench::banner("Figure 3",
                  "Sequential access bandwidth (GB/s) vs thread count");

    const std::vector<std::uint32_t> threads = {1,  2,  4,  8, 12,
                                                16, 20, 24, 28, 32};
    struct Panel
    {
        memo::Target target;
        const char *caption;
    };
    const Panel panels[] = {
        {memo::Target::Ddr5Local, "(a) DDR5-L8"},
        {memo::Target::Cxl, "(b) CXL memory"},
        {memo::Target::Ddr5Remote, "(c) DDR5-R1"},
    };
    struct Instr
    {
        MemOp::Kind kind;
        const char *name;
    };
    const Instr instrs[] = {
        {MemOp::Kind::Load, "load"},
        {MemOp::Kind::Store, "store"},
        {MemOp::Kind::NtStore, "nt-store"},
    };

    // Every (panel, instr, threads) point is an independent Machine;
    // compute the whole grid through the sweep pool, then render in
    // fixed order so the output is identical for any job count.
    const std::size_t nInstrs = std::size(instrs);
    const std::size_t nPoints =
        std::size(panels) * nInstrs * threads.size();
    SweepRunner pool(bench::jobsFromArgs(argc, argv));
    const std::vector<double> grid =
        pool.map(nPoints, [&](std::size_t i) {
            const std::size_t t = i % threads.size();
            const std::size_t in = (i / threads.size()) % nInstrs;
            const std::size_t p = i / (threads.size() * nInstrs);
            return memo::runSeqBandwidth(panels[p].target,
                                         instrs[in].kind, threads[t]);
        });

    std::size_t idx = 0;
    for (const Panel &panel : panels) {
        std::printf("\n%s\n", panel.caption);
        std::printf("%-10s", "threads");
        for (std::uint32_t t : threads)
            std::printf(" %6u", t);
        std::printf("\n");
        for (const Instr &in : instrs) {
            const double *row = &grid[idx];
            idx += threads.size();
            std::printf("%-10s", in.name);
            for (std::size_t i = 0; i < threads.size(); ++i)
                std::printf(" %6.1f", row[i]);
            std::printf("\n");
            for (std::size_t i = 0; i < threads.size(); ++i) {
                std::printf("fig3,%s,%s,%u,%.1f\n",
                            memo::targetName(panel.target), in.name,
                            threads[i], row[i]);
            }
        }
        if (panel.target == memo::Target::Cxl) {
            bench::note("grey dash line of the paper: DDR4-2666 "
                        "theoretical max = 21.3 GB/s");
        }
    }
    std::printf("\n");
    bench::note("paper: L8 load peaks ~221 GB/s @ ~26 thr; L8 nt-store "
                "~170 GB/s @ ~16 thr; CXL load peaks ~8 thr then drops "
                "toward ~17; CXL nt-store peaks at 2 thr then collapses");
    return 0;
}
