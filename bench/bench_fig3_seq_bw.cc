/**
 * @file
 * Figure 3 reproduction: sequential-access bandwidth vs thread count
 * for load / temporal store / non-temporal store on (a) 8-channel
 * local DDR5, (b) CXL memory, (c) 1-channel remote DDR5.
 */

#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"

using namespace cxlmemo;

int
main()
{
    bench::banner("Figure 3",
                  "Sequential access bandwidth (GB/s) vs thread count");

    const std::vector<std::uint32_t> threads = {1,  2,  4,  8, 12,
                                                16, 20, 24, 28, 32};
    struct Panel
    {
        memo::Target target;
        const char *caption;
    };
    const Panel panels[] = {
        {memo::Target::Ddr5Local, "(a) DDR5-L8"},
        {memo::Target::Cxl, "(b) CXL memory"},
        {memo::Target::Ddr5Remote, "(c) DDR5-R1"},
    };
    struct Instr
    {
        MemOp::Kind kind;
        const char *name;
    };
    const Instr instrs[] = {
        {MemOp::Kind::Load, "load"},
        {MemOp::Kind::Store, "store"},
        {MemOp::Kind::NtStore, "nt-store"},
    };

    for (const Panel &panel : panels) {
        std::printf("\n%s\n", panel.caption);
        std::printf("%-10s", "threads");
        for (std::uint32_t t : threads)
            std::printf(" %6u", t);
        std::printf("\n");
        for (const Instr &in : instrs) {
            std::vector<double> row;
            row.reserve(threads.size());
            for (std::uint32_t t : threads)
                row.push_back(
                    memo::runSeqBandwidth(panel.target, in.kind, t));
            std::printf("%-10s", in.name);
            for (double bw : row)
                std::printf(" %6.1f", bw);
            std::printf("\n");
            for (std::size_t i = 0; i < threads.size(); ++i) {
                std::printf("fig3,%s,%s,%u,%.1f\n",
                            memo::targetName(panel.target), in.name,
                            threads[i], row[i]);
            }
        }
        if (panel.target == memo::Target::Cxl) {
            bench::note("grey dash line of the paper: DDR4-2666 "
                        "theoretical max = 21.3 GB/s");
        }
    }
    std::printf("\n");
    bench::note("paper: L8 load peaks ~221 GB/s @ ~26 thr; L8 nt-store "
                "~170 GB/s @ ~16 thr; CXL load peaks ~8 thr then drops "
                "toward ~17; CXL nt-store peaks at 2 thr then collapses");
    return 0;
}
