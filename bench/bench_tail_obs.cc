/**
 * @file
 * Tail-forensics guardrail: measures what worst-K outlier capture --
 * which examines *every* completed demand read, not a sample -- and
 * the windowed percentile timelines cost on a loaded CXL run, and
 * checks the contracts that make the layer safe to ship armed:
 *
 *  - observe, never perturb: the simulated result (loaded latency in
 *    simulated ns) is identical with each layer on;
 *  - worst-K invariants hold on a real run: every retained stack sums
 *    exactly to its end-to-end latency, the per-class bound holds,
 *    and every completed demand read was considered;
 *  - the overhead of each layer -- K=8, K=64, and worst-K together
 *    with histograms + windowed percentile metrics -- stays under the
 *    5% budget.
 *
 * Writes the measurements to BENCH_tail_obs.json and exits nonzero on
 * any violation.
 *
 *   bench_tail_obs [--reps N] [--out BENCH_tail_obs.json]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "sim/tailcap.hh"
#include "system/machine.hh"

namespace
{

using namespace cxlmemo;

constexpr double kOverheadBudgetPct = 5.0;
constexpr std::uint32_t kThreads = 8;

struct RunOut
{
    double simNs = 0.0;       //!< functional outcome (must not move)
    TailSummary tail;         //!< summary when armed
    std::uint64_t holdCap = 0; //!< k * regime classes
};

double
timeOne(const ObservabilityOptions &obs, RunOut &keep)
{
    memo::Options o;
    o.obs = obs;
    o.onMachineDone = [&keep](Machine &m) {
        if (TailCapture *tc = m.tailCapture()) {
            keep.tail = tc->summary();
            keep.holdCap =
                static_cast<std::uint64_t>(tc->k()) * numTailRegimes;
        }
    };
    const auto t0 = std::chrono::steady_clock::now();
    keep.simNs = memo::runLoadedLatency(memo::Target::Cxl, kThreads, o);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cxlmemo;

    int reps = 3;
    std::string out = "BENCH_tail_obs.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0)
            reps = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
    }

    bench::banner("BENCH tail_obs",
                  "worst-K tail capture overhead on loaded CXL reads");

    bool ok = true;

    struct Layer
    {
        const char *name;
        ObservabilityOptions base; //!< what the layer is paired with
        ObservabilityOptions obs;
        double bestRatio = 1e300; //!< best paired layer/base ratio
        double pct = 0.0;
        RunOut run;
        Layer(const char *n, const ObservabilityOptions &b,
              const ObservabilityOptions &o)
            : name(n), base(b), obs(o)
        {
        }
    };
    ObservabilityOptions dark;
    ObservabilityOptions k8;
    k8.tailK = 8;
    ObservabilityOptions k64;
    k64.tailK = 64;
    // The histogram and interval-metrics layers predate this
    // subsystem and carry their own budgets; the all-armed pair
    // budgets what tail forensics adds on top of them (worst-K over
    // every read + the windowed percentile extraction that rides
    // their snapshots).
    ObservabilityOptions histMetrics;
    histMetrics.latencyHistograms = true;
    histMetrics.metricsInterval = ticksFromNs(1000.0);
    ObservabilityOptions all = histMetrics;
    all.tailK = 8;
    std::vector<Layer> layers = {
        Layer("tail_k8", dark, k8),
        Layer("tail_k64", dark, k64),
        Layer("tail_over_hist_metrics", histMetrics, all)};

    // Paired design: each layer measurement is ratioed against its
    // baseline run timed immediately before it in the same rep, and
    // the reported overhead is the best (lowest) ratio across reps --
    // adjacent pairs see the same machine load, so drift on a shared
    // box cancels instead of folding into the estimate. One warm-up
    // rep is discarded.
    {
        RunOut scratch;
        timeOne({}, scratch);
    }
    double darkBest = 1e300;
    double darkNs = 0.0;
    for (int i = 0; i < reps; ++i) {
        for (Layer &l : layers) {
            RunOut d;
            const double td = timeOne(l.base, d);
            if (!l.base.enabled()) {
                if (td < darkBest)
                    darkBest = td;
                darkNs = d.simNs;
            }
            RunOut r;
            const double t = timeOne(l.obs, r);
            const double ratio = t / td;
            if (ratio < l.bestRatio) {
                l.bestRatio = ratio;
                l.pct = (ratio - 1.0) * 100.0;
            }
            l.run = r; // deterministic; any rep will do
        }
    }

    std::printf("tail_obs,dark_ms,%.2f\n", darkBest * 1e3);

    for (Layer &l : layers) {
        std::printf("tail_obs,%s_overhead_pct,%.2f\n", l.name, l.pct);
        if (l.pct > kOverheadBudgetPct) {
            std::fprintf(stderr,
                         "FAIL: %s overhead %.2f%% exceeds the "
                         "%.1f%% budget\n",
                         l.name, l.pct, kOverheadBudgetPct);
            ok = false;
        }
        // Observe, never perturb: the simulated latency must be
        // bit-identical to the dark run's.
        if (l.run.simNs != darkNs) {
            std::fprintf(stderr,
                         "FAIL: %s changed the simulated result "
                         "(%.6f vs %.6f ns)\n",
                         l.name, l.run.simNs, darkNs);
            ok = false;
        }
        // Worst-K invariants on a real run.
        const TailSummary &t = l.run.tail;
        if (t.considered == 0 || t.held == 0
            || t.held > l.run.holdCap || !t.stackExact
            || t.worstNs <= 0.0 || t.worstNs < t.kthNs) {
            std::fprintf(stderr,
                         "FAIL: %s tail invariants violated "
                         "(considered=%llu held=%llu cap=%llu "
                         "exact=%d worst=%.1f kth=%.1f)\n",
                         l.name, (unsigned long long)t.considered,
                         (unsigned long long)t.held,
                         (unsigned long long)l.run.holdCap,
                         t.stackExact ? 1 : 0, t.worstNs, t.kthNs);
            ok = false;
        }
    }

    // Deeper capture keeps strictly more (or equal) outliers and
    // considers exactly the same read population.
    if (layers[1].run.tail.held < layers[0].run.tail.held
        || layers[1].run.tail.considered
               != layers[0].run.tail.considered) {
        std::fprintf(stderr,
                     "FAIL: K=64 retained less than K=8 or examined "
                     "a different population\n");
        ok = false;
    }

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"tail_obs\",\n"
                     "  \"workload\": \"loaded cxl x%u\",\n"
                     "  \"reps\": %d,\n"
                     "  \"dark_ms\": %.3f,\n"
                     "  \"overhead_budget_pct\": %.1f,\n"
                     "  \"considered\": %llu,\n"
                     "  \"layers\": [",
                     kThreads, reps, darkBest * 1e3,
                     kOverheadBudgetPct,
                     (unsigned long long)layers[0].run.tail.considered);
        for (std::size_t i = 0; i < layers.size(); ++i)
            std::fprintf(f,
                         "%s\n    {\"layer\": \"%s\", "
                         "\"overhead_pct\": %.3f, \"held\": %llu, "
                         "\"worst_ns\": %.1f, \"stack_exact\": %s}",
                         i ? "," : "", layers[i].name, layers[i].pct,
                         (unsigned long long)layers[i].run.tail.held,
                         layers[i].run.tail.worstNs,
                         layers[i].run.tail.stackExact ? "true"
                                                       : "false");
        std::fprintf(f, "\n  ],\n  \"ok\": %s\n}\n",
                     ok ? "true" : "false");
        std::fclose(f);
        bench::note(("wrote " + out).c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    if (ok)
        bench::note("tail-forensics guardrails hold: every layer "
                    "under budget, results untouched, stacks exact");
    return ok ? 0 : 1;
}
