/**
 * @file
 * Fabric-observability guardrail: measures what cross-host tracing,
 * per-port attribution and the interval-metrics timeline cost on the
 * full pool drill (aggressor flood + host crash + fencing + poison),
 * and checks the three contracts that make the layers safe to ship
 * armed:
 *
 *  - observe, never perturb: every functional outcome (digests,
 *    fencing timeline, end tick) is identical with each layer on;
 *  - the attribution invariants hold on a disturbed run (per-port
 *    stack <= total, Little's law cluster-wide);
 *  - the overhead of each layer -- and all of them together with
 *    sampled (1/64) tracing -- stays under the 5% budget.
 *
 * Writes the measurements to BENCH_fabric_obs.json and exits nonzero
 * on any violation.
 *
 *   bench_fabric_obs [--reps N] [--out BENCH_fabric_obs.json]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "system/cluster.hh"

namespace
{

using namespace cxlmemo;

constexpr double kOverheadBudgetPct = 5.0;

PoolSpec
drillSpec()
{
    std::string err;
    const auto sp = PoolSpec::parse(
        "hosts=4,ops=8000,crash-host=1,crash-at-ns=40000,aggressor=3,"
        "credits=16,poison-host=2,poison-every=97",
        err);
    if (!sp) {
        std::fprintf(stderr, "bad drill spec: %s\n", err.c_str());
        std::exit(1);
    }
    return *sp;
}

/** Functional fingerprint (the observability layers must not move
 *  any of this). The verdict is excluded: attribution legitimately
 *  appends the fabric regime behind the unchanged host verdict. */
std::string
fingerprint(const ClusterResult &r)
{
    std::ostringstream os;
    for (const auto &h : r.hosts)
        os << h.host << ":" << h.digest.ops << ":" << std::hex
           << h.digest.valueHash << ":" << h.digest.ledgerHash << ":"
           << std::dec << h.fenced << ";";
    os << r.timeToFenceNs << ";" << r.endTick;
    return os.str();
}

double
timeOne(const PoolSpec &sp, const ObservabilityOptions &obs,
        ClusterResult &keep)
{
    Cluster::Options o;
    o.obs = obs;
    const auto t0 = std::chrono::steady_clock::now();
    Cluster c(sp, o);
    keep = c.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cxlmemo;

    int reps = 3;
    std::string out = "BENCH_fabric_obs.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0)
            reps = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
    }

    bench::banner("BENCH fabric_obs",
                  "fabric observability overhead on the pool drill");

    const PoolSpec sp = drillSpec();
    bool ok = true;

    struct Layer
    {
        const char *name;
        ObservabilityOptions obs;
        double bestRatio = 1e300; //!< best paired layer/dark ratio
        double pct = 0.0;
        ClusterResult run;
        Layer(const char *n, const ObservabilityOptions &o)
            : name(n), obs(o)
        {
        }
    };
    ObservabilityOptions attrib;
    attrib.attribution = true;
    ObservabilityOptions metrics;
    metrics.metricsInterval = ticksFromNs(1000.0);
    ObservabilityOptions trace;
    trace.traceSampleEvery = 64;
    ObservabilityOptions all;
    all.attribution = true;
    all.metricsInterval = ticksFromNs(1000.0);
    all.traceSampleEvery = 64;
    std::vector<Layer> layers = {Layer("attrib", attrib),
                                 Layer("metrics", metrics),
                                 Layer("trace_1in64", trace),
                                 Layer("all_armed", all)};

    // Paired design: each layer measurement is ratioed against a
    // dark run timed immediately before it in the same rep, and the
    // reported overhead is the best (lowest) ratio across reps. On a
    // shared box the load drifts on a scale of hundreds of ms; a
    // block design (all dark reps, then all layer reps) folds that
    // drift straight into the overhead estimate, while adjacent
    // pairs see the same machine. One warm-up rep is discarded.
    {
        ClusterResult scratch;
        timeOne(sp, {}, scratch);
    }
    double darkBest = 1e300;
    std::string darkFp;
    for (int i = 0; i < reps; ++i) {
        for (Layer &l : layers) {
            ClusterResult d;
            const double td = timeOne(sp, {}, d);
            if (td < darkBest)
                darkBest = td;
            if (darkFp.empty())
                darkFp = fingerprint(d);
            ClusterResult r;
            const double t = timeOne(sp, l.obs, r);
            const double ratio = t / td;
            if (ratio < l.bestRatio) {
                l.bestRatio = ratio;
                l.pct = (ratio - 1.0) * 100.0;
            }
            l.run = std::move(r); // deterministic; any rep will do
        }
    }

    const double darkS = darkBest;
    std::printf("fabric_obs,dark_ms,%.2f\n", darkS * 1e3);

    ClusterResult attribRun;
    for (Layer &l : layers) {
        std::printf("fabric_obs,%s_overhead_pct,%.2f\n", l.name,
                    l.pct);
        if (l.pct > kOverheadBudgetPct) {
            std::fprintf(stderr,
                         "FAIL: %s overhead %.2f%% exceeds the "
                         "%.1f%% budget\n",
                         l.name, l.pct, kOverheadBudgetPct);
            ok = false;
        }
        if (fingerprint(l.run) != darkFp) {
            std::fprintf(stderr,
                         "FAIL: %s changed a functional outcome\n",
                         l.name);
            ok = false;
        }
        if (l.obs.attribution && !l.run.fabric.enabled()) {
            std::fprintf(stderr, "FAIL: %s produced no snapshot\n",
                         l.name);
            ok = false;
        }
        if (std::strcmp(l.name, "attrib") == 0)
            attribRun = std::move(l.run);
    }

    // Attribution invariants on the disturbed drill: stack <= total
    // on every port, Little's law cluster-wide.
    const bool decompOk = attribRun.fabric.decompositionExact();
    const bool littleOk = attribRun.fabric.littleOk();
    std::printf("fabric_obs,decomposition_exact,%d\n",
                decompOk ? 1 : 0);
    std::printf("fabric_obs,little_ok,%d\n", littleOk ? 1 : 0);
    if (!decompOk || !littleOk) {
        std::fprintf(stderr,
                     "FAIL: attribution invariant violated "
                     "(decomp=%d little=%d)\n",
                     decompOk ? 1 : 0, littleOk ? 1 : 0);
        ok = false;
    }

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"fabric_obs\",\n"
                     "  \"workload\": \"%s\",\n"
                     "  \"reps\": %d,\n"
                     "  \"dark_ms\": %.3f,\n"
                     "  \"overhead_budget_pct\": %.1f,\n"
                     "  \"decomposition_exact\": %s,\n"
                     "  \"little_ok\": %s,\n"
                     "  \"layers\": [",
                     sp.toString().c_str(), reps, darkS * 1e3,
                     kOverheadBudgetPct, decompOk ? "true" : "false",
                     littleOk ? "true" : "false");
        for (std::size_t i = 0; i < layers.size(); ++i)
            std::fprintf(f,
                         "%s\n    {\"layer\": \"%s\", "
                         "\"overhead_pct\": %.3f}",
                         i ? "," : "", layers[i].name,
                         layers[i].pct);
        std::fprintf(f, "\n  ],\n  \"verdict\": \"%s\"\n}\n",
                     attribRun.verdict.c_str());
        std::fclose(f);
        bench::note(("wrote " + out).c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    if (ok)
        bench::note("fabric observability guardrails hold: every "
                    "layer under budget, outcomes untouched, "
                    "decomposition exact");
    return ok ? 0 : 1;
}
