/**
 * @file
 * RAS fault-tail study: how flit CRC errors on the CXL link inflate
 * the *tail* of loaded load latency. Sweeps the per-flit CRC error
 * rate and reports avg/p50/p99 of a windowed dependent-load probe on
 * the CXL target, plus the recovery counters (link retries, replayed
 * bytes). The average barely moves at realistic error rates -- the
 * retry penalty is rare -- but p99 departs early, which is exactly
 * why RAS behaviour matters for latency-sensitive consumers of CXL
 * memory. Each sweep point builds an independent Machine, so points
 * run in parallel under --jobs.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "sim/sweep.hh"

using namespace cxlmemo;

int
main(int argc, char **argv)
{
    bench::banner("Fault tail",
                  "CXL loaded-latency tail vs link CRC error rate");

    const std::vector<double> rates = {0.0, 1e-5, 1e-4, 1e-3, 5e-3};
    constexpr std::uint32_t threads = 4;

    SweepRunner pool(bench::jobsFromArgs(argc, argv));
    const auto dists = pool.map(rates.size(), [&](std::size_t i) {
        memo::Options opts;
        opts.faults.crcPerFlit = rates[i];
        return memo::runLoadedLatencyDist(memo::Target::Cxl, threads,
                                          opts);
    });

    std::printf("%-10s %9s %9s %9s %12s %12s\n", "crc-rate", "avg-ns",
                "p50-ns", "p99-ns", "link-retries", "replay-KiB");
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const memo::LoadedLatencyDist &d = dists[i];
        std::printf("%-10g %9.1f %9.1f %9.1f %12llu %12llu\n", rates[i],
                    d.avgNs, d.p50Ns, d.p99Ns,
                    (unsigned long long)d.ras.linkRetries,
                    (unsigned long long)(d.ras.replayBytes / kiB));
    }
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const memo::LoadedLatencyDist &d = dists[i];
        std::printf("fault-tail,crc=%g,%u,%.1f,%.1f,%.1f,%llu\n",
                    rates[i], threads, d.avgNs, d.p50Ns, d.p99Ns,
                    (unsigned long long)d.ras.linkRetries);
    }
    bench::note("expect: p99 and link-retries rise monotonically with "
                "the CRC rate; avg/p50 stay near fault-free until "
                "~1e-3, where every flit pair pays a replay");
    return 0;
}
