/**
 * @file
 * Figure 7 reproduction: maximum sustainable Redis QPS per YCSB
 * workload, with different fractions of the store's memory on CXL
 * (via the weighted-interleave mempolicy). Workload D is also run
 * with zipfian and uniform request distributions to vary access
 * locality; workload E (range query) is omitted as in the paper.
 */

#include <vector>

#include "apps/kvstore/kvstore.hh"
#include "bench_common.hh"

using namespace cxlmemo;
using namespace cxlmemo::kv;

int
main()
{
    bench::banner("Figure 7", "Redis max sustainable QPS (k)");

    struct Wl
    {
        YcsbWorkload w;
        const char *name;
    };
    const Wl workloads[] = {
        {YcsbWorkload::a(), "A"},
        {YcsbWorkload::b(), "B"},
        {YcsbWorkload::c(), "C"},
        {YcsbWorkload::d(KeyDist::Latest), "D-lat"},
        {YcsbWorkload::d(KeyDist::Zipfian), "D-zipf"},
        {YcsbWorkload::d(KeyDist::Uniform), "D-uni"},
        {YcsbWorkload::f(), "F"},
    };
    const std::vector<double> fracs = {1.0, 0.5, 0.1, 0.0323, 0.0};

    std::printf("%-8s", "wl\\cxl%");
    for (double f : fracs)
        std::printf(" %8.2f", f * 100.0);
    std::printf("\n");
    for (const Wl &wl : workloads) {
        std::vector<double> row;
        for (double f : fracs)
            row.push_back(maxSustainableQps(wl.w, f, 0.3));
        std::printf("%-8s", wl.name);
        for (double v : row)
            std::printf(" %8.1f", v / 1e3);
        std::printf("\n");
        for (std::size_t i = 0; i < fracs.size(); ++i) {
            std::printf("fig7,%s,%.2f,%.0f\n", wl.name,
                        fracs[i] * 100.0, row[i]);
        }
    }
    bench::note("paper: less memory on CXL -> higher max QPS for every "
                "workload; none matches pure DRAM; D-lat benefits from "
                "recency locality (recent inserts cached)");
    return 0;
}
