/**
 * @file
 * Figure 5 reproduction: random block access bandwidth. A 3x3 grid:
 * rows are memories (DDR5-L8, CXL, DDR5-R1), columns are instruction
 * types (load, store, nt-store); within each panel, bandwidth vs
 * block size for several thread counts. NT-store blocks are fenced,
 * as in MEMO.
 */

#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "sim/sweep.hh"

using namespace cxlmemo;

int
main(int argc, char **argv)
{
    bench::banner("Figure 5",
                  "Random block access bandwidth (GB/s)");

    const std::vector<std::uint64_t> blocks = {1 * kiB, 4 * kiB, 16 * kiB,
                                               32 * kiB, 64 * kiB};
    const std::vector<std::uint32_t> threads = {1, 2, 4, 8, 16, 32};
    struct Instr
    {
        MemOp::Kind kind;
        const char *name;
    };
    const Instr instrs[] = {
        {MemOp::Kind::Load, "load"},
        {MemOp::Kind::Store, "store"},
        {MemOp::Kind::NtStore, "nt-store"},
    };

    // Keep points affordable: shorter windows than Fig. 3 (random
    // access reaches steady state quickly).
    memo::Options opts;
    opts.warmupUs = 20.0;
    opts.measureUs = 90.0;

    const memo::Target targets[] = {memo::Target::Ddr5Local,
                                    memo::Target::Cxl,
                                    memo::Target::Ddr5Remote};

    // Flatten the 3x3x5x6 grid into independent points and compute
    // them through the sweep pool; printing afterward in fixed order
    // keeps the output identical for any job count.
    const std::size_t nInstrs = std::size(instrs);
    const std::size_t nPoints = std::size(targets) * nInstrs
                                * blocks.size() * threads.size();
    SweepRunner pool(bench::jobsFromArgs(argc, argv));
    const std::vector<double> grid =
        pool.map(nPoints, [&](std::size_t i) {
            const std::size_t t = i % threads.size();
            const std::size_t b = (i / threads.size()) % blocks.size();
            const std::size_t in =
                (i / (threads.size() * blocks.size())) % nInstrs;
            const std::size_t tg =
                i / (threads.size() * blocks.size() * nInstrs);
            return memo::runRandBandwidth(targets[tg], instrs[in].kind,
                                          threads[t], blocks[b], opts);
        });

    std::size_t idx = 0;
    for (auto target : targets) {
        for (const Instr &in : instrs) {
            std::printf("\n[%s / %s]\n", memo::targetName(target),
                        in.name);
            std::printf("%-10s", "blk\\thr");
            for (std::uint32_t t : threads)
                std::printf(" %6u", t);
            std::printf("\n");
            for (std::uint64_t b : blocks) {
                const double *row = &grid[idx];
                idx += threads.size();
                std::printf("%6lluKiB ", (unsigned long long)(b / kiB));
                for (std::size_t i = 0; i < threads.size(); ++i)
                    std::printf(" %6.1f", row[i]);
                std::printf("\n");
                for (std::size_t i = 0; i < threads.size(); ++i) {
                    std::printf("fig5,%s,%s,%llu,%u,%.1f\n",
                                memo::targetName(target), in.name,
                                (unsigned long long)b, threads[i],
                                row[i]);
                }
            }
        }
    }
    bench::note("paper: all memories equal-poor at 1 KiB; DDR5-L8 "
                "scales with threads at 16+ KiB; CXL/R1 stop gaining "
                "past ~4 threads; CXL nt-store has block-size sweet "
                "spots (2thr@32K, 4thr@16K) then drops from the "
                "device write-buffer overflow");
    return 0;
}
