/**
 * @file
 * Tiering-policy study: the paper states that weighted round-robin
 * interleaving "should serve as a baseline for most memory tiering
 * policies" (Sec. 5). This bench drives a skewed (zipfian) workload
 * whose working set exceeds a fixed DRAM budget and compares:
 *
 *   cxl-only     everything on the expander (lower bound)
 *   interleave   weighted round-robin at the budget ratio (baseline)
 *   tiering      the hot/cold daemon promoting into the DRAM budget
 *   dram-only    everything local (upper bound, capacity permitting)
 *
 * A real tiering policy must land between `interleave` and
 * `dram-only`; the bench shows ours does, and by how much.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/tiering/tiering.hh"
#include "bench_common.hh"
#include "cpu/streams.hh"
#include "sim/rng.hh"

using namespace cxlmemo;
using namespace cxlmemo::tiering;

namespace
{

constexpr std::uint64_t workingSet = 1 * giB;
constexpr double dramShare = 0.25; // DRAM budget = 1/4 of the data
constexpr std::uint32_t threads = 4;

/** Zipfian reads over the tiered buffer (heat-aware translation). */
class TieredZipfStream : public AccessStream
{
  public:
    TieredZipfStream(TieredBuffer &buf, std::uint64_t seed)
        : buf_(buf),
          zipf_(buf.size() / pageBytes, 0.99),
          rng_(seed)
    {}

    bool
    next(MemOp &op) override
    {
        // One hot-page-distributed line read per op.
        const std::uint64_t page = zipf_.next(rng_);
        const std::uint64_t off = page * pageBytes
                                  + rng_.below(pageBytes / 64) * 64;
        op.kind = MemOp::Kind::Load;
        op.paddr = buf_.touch(off);
        return true;
    }

  private:
    TieredBuffer &buf_;
    ScrambledZipfianGenerator zipf_;
    Rng rng_;
};

/** Same workload over a statically placed buffer. */
class StaticZipfStream : public AccessStream
{
  public:
    StaticZipfStream(const NumaBuffer &buf, std::uint64_t seed)
        : buf_(buf), zipf_(buf.size() / pageBytes, 0.99), rng_(seed)
    {}

    bool
    next(MemOp &op) override
    {
        const std::uint64_t page = zipf_.next(rng_);
        const std::uint64_t off = page * pageBytes
                                  + rng_.below(pageBytes / 64) * 64;
        op.kind = MemOp::Kind::Load;
        op.paddr = buf_.translate(off);
        return true;
    }

  private:
    const NumaBuffer &buf_;
    ScrambledZipfianGenerator zipf_;
    Rng rng_;
};

double
measure(Machine &m, std::vector<std::unique_ptr<HwThread>> &pool,
        double warmupUs, double measureUs)
{
    m.eq().runUntil(m.eq().curTick() + ticksFromUs(warmupUs));
    std::uint64_t before = 0;
    for (auto &t : pool)
        before += t->stats().loads;
    m.eq().runUntil(m.eq().curTick() + ticksFromUs(measureUs));
    std::uint64_t after = 0;
    for (auto &t : pool)
        after += t->stats().loads;
    return static_cast<double>(after - before) / (measureUs * 1e-6);
}

double
runStatic(const MemPolicy &policy)
{
    Machine m(Testbed::SingleSocketCxl);
    NumaBuffer buf = m.numa().alloc(workingSet, policy);
    std::vector<std::unique_ptr<HwThread>> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.push_back(m.makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(
            std::make_unique<StaticZipfStream>(buf, 91 + t), 0,
            nullptr);
    }
    return measure(m, pool, 200.0, 600.0);
}

} // namespace

int
main()
{
    bench::banner("Tiering study",
                  "zipfian reads, working set 4x the DRAM budget "
                  "(lines read per second)");

    const double cxl_only =
        runStatic(MemPolicy::membind(
            Machine(Testbed::SingleSocketCxl).cxlNode()));

    Machine probe(Testbed::SingleSocketCxl);
    const double interleave = runStatic(MemPolicy::splitDramCxl(
        probe.localNode(), probe.cxlNode(), 1.0 - dramShare));

    double tiering_tput = 0.0;
    double residency = 0.0;
    std::uint64_t promotions = 0;
    {
        Machine m(Testbed::SingleSocketCxl);
        TieringParams tp;
        tp.dramBudgetPages = static_cast<std::uint64_t>(
            workingSet / pageBytes * dramShare);
        TieredBuffer buf(m, workingSet, tp);
        buf.startDaemon();
        std::vector<std::unique_ptr<HwThread>> pool;
        for (std::uint32_t t = 0; t < threads; ++t) {
            pool.push_back(m.makeThread(static_cast<std::uint16_t>(t)));
            pool.back()->start(
                std::make_unique<TieredZipfStream>(buf, 91 + t), 0,
                nullptr);
        }
        // Let the daemon converge before measuring.
        tiering_tput = measure(m, pool, 8000.0, 600.0);
        residency = buf.dramResidency();
        promotions = buf.stats().promotions;
    }

    const double dram_only = runStatic(MemPolicy::membind(
        Machine(Testbed::SingleSocketCxl).localNode()));

    std::printf("%-22s %14s %10s\n", "policy", "lines/s",
                "vs baseline");
    auto row = [&](const char *name, double v) {
        std::printf("%-22s %14.0f %+9.1f%%\n", name, v,
                    (v / interleave - 1.0) * 100.0);
    };
    row("cxl-only", cxl_only);
    row("interleave 3:1 (base)", interleave);
    row("tiering daemon", tiering_tput);
    row("dram-only (upper)", dram_only);
    std::printf("\ntiering daemon: %.1f%% of pages resident on DRAM "
                "(budget %.0f%%), %llu promotions\n",
                residency * 100.0, dramShare * 100.0,
                (unsigned long long)promotions);
    bench::note("paper Sec. 5: weighted round-robin is the baseline a "
                "tiering policy must beat; with a skewed working set "
                "the hot/cold daemon should land between the baseline "
                "and dram-only");
    return 0;
}
