/**
 * @file
 * Figure 4 reproduction: data-movement bandwidth between local DDR5
 * ("D") and CXL memory ("C").
 *
 *  (a) movdir64B copy bandwidth vs thread count for D2D / D2C /
 *      C2D / C2C;
 *  (b) single-thread copy throughput: memcpy, movdir64B, and Intel
 *      DSA synchronous / asynchronous with batch sizes 1, 16, 128.
 */

#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"

using namespace cxlmemo;

int
main()
{
    const memo::CopyPath paths[] = {
        memo::CopyPath::D2D, memo::CopyPath::D2C, memo::CopyPath::C2D,
        memo::CopyPath::C2C};

    bench::banner("Figure 4a",
                  "movdir64B data movement bandwidth (GB/s)");
    const std::vector<std::uint32_t> threads = {1, 2, 4, 8};
    std::printf("%-8s", "threads");
    for (auto p : paths)
        std::printf(" %8s", memo::copyPathName(p));
    std::printf("\n");
    for (std::uint32_t t : threads) {
        std::vector<double> row;
        for (auto p : paths)
            row.push_back(memo::runMovdirBandwidth(p, t));
        std::printf("%-8u", t);
        for (double bw : row)
            std::printf(" %8.2f", bw);
        std::printf("\n");
        for (std::size_t i = 0; i < 4; ++i)
            std::printf("fig4a,%s,%u,%.2f\n", memo::copyPathName(paths[i]),
                        t, row[i]);
    }
    bench::note("paper: D2* similar and higher; C2* lower, C2C lowest "
                "(slow CXL loads gate the copy)");

    bench::banner("Figure 4b",
                  "Single-thread copy throughput (GB/s), 4 KiB blocks");
    struct Method
    {
        memo::CopyMethod method;
        std::uint32_t batch;
        const char *name;
    };
    const Method methods[] = {
        {memo::CopyMethod::Memcpy, 1, "memcpy"},
        {memo::CopyMethod::Movdir64, 1, "movdir64B"},
        {memo::CopyMethod::DsaSync, 1, "dsa-sync-b1"},
        {memo::CopyMethod::DsaAsync, 1, "dsa-async-b1"},
        {memo::CopyMethod::DsaAsync, 16, "dsa-async-b16"},
        {memo::CopyMethod::DsaAsync, 128, "dsa-async-b128"},
    };
    std::printf("%-16s", "method");
    for (auto p : paths)
        std::printf(" %8s", memo::copyPathName(p));
    std::printf("\n");
    for (const Method &m : methods) {
        std::vector<double> row;
        for (auto p : paths)
            row.push_back(memo::runCopyBandwidth(p, m.method, m.batch));
        std::printf("%-16s", m.name);
        for (double bw : row)
            std::printf(" %8.2f", bw);
        std::printf("\n");
        for (std::size_t i = 0; i < 4; ++i)
            std::printf("fig4b,%s,%s,%.2f\n", m.name,
                        memo::copyPathName(paths[i]), row[i]);
    }
    bench::note("paper: sync-b1 DSA ~ CPU memcpy; any asynchronicity or "
                "batching improves; C2D beats D2C (writes land on the "
                "faster DRAM); splitting src/dst beats C2C");
    return 0;
}
