/**
 * @file
 * Figure 10 reproduction: DeathStarBench social-network p99 latency
 * vs QPS with the databases (post storage + timeline caches) pinned
 * to local DDR5 or to CXL memory; plus the memory breakdown by
 * component functionality (rightmost panel).
 *
 * Workloads: compose-post, read-user-timeline, and the mixed workload
 * (60% read-home-timeline / 30% read-user-timeline / 10% compose).
 * Read-home-timeline alone is omitted, as in the paper, because it
 * never touches the databases.
 */

#include <vector>

#include "apps/dsb/dsb.hh"
#include "bench_common.hh"

using namespace cxlmemo;
using namespace cxlmemo::dsb;

int
main()
{
    bench::banner("Figure 10",
                  "DeathStarBench p99 latency (ms) and memory breakdown");

    struct Workload
    {
        const char *name;
        double compose, readUser, readHome;
        std::vector<double> qps;
    };
    const Workload workloads[] = {
        {"compose-post", 1.0, 0.0, 0.0, {500, 1500, 3000, 4500}},
        {"read-user-timeline", 0.0, 1.0, 0.0, {1000, 2500, 4000, 5000}},
        {"mixed-60/30/10", 0.1, 0.3, 0.6, {2000, 4000, 6000, 7000}},
    };

    for (const Workload &w : workloads) {
        std::printf("\n[%s]\n", w.name);
        std::printf("%8s %12s %12s\n", "qps", "p99 ddr5", "p99 cxl");
        for (double q : w.qps) {
            const DsbRunResult ddr =
                runDsb(w.compose, w.readUser, w.readHome, false, q, 0.8);
            const DsbRunResult cxl =
                runDsb(w.compose, w.readUser, w.readHome, true, q, 0.8);
            auto headline = [&](const DsbRunResult &r) {
                if (w.compose == 1.0)
                    return r.p99ComposeMs;
                if (w.readUser == 1.0)
                    return r.p99ReadUserMs;
                return r.p99ComposeMs; // mixed: report the gap-bearing
                                       // class (compose)
            };
            std::printf("%8.0f %12.2f %12.2f\n", q, headline(ddr),
                        headline(cxl));
            std::printf("fig10,%s,%.0f,%.2f,%.2f\n", w.name, q,
                        headline(ddr), headline(cxl));
            if (w.compose < 1.0 && w.readUser < 1.0) {
                std::printf(
                    "         mixed detail ddr5: C=%.2f U=%.2f H=%.2f | "
                    "cxl: C=%.2f U=%.2f H=%.2f\n",
                    ddr.p99ComposeMs, ddr.p99ReadUserMs,
                    ddr.p99ReadHomeMs, cxl.p99ComposeMs,
                    cxl.p99ReadUserMs, cxl.p99ReadHomeMs);
            }
        }
    }

    std::printf("\n[memory breakdown by functionality]\n");
    {
        Machine m(Testbed::SingleSocketCxl);
        SocialNetwork app(m, DsbParams{},
                          MemPolicy::membind(m.localNode()));
        for (const auto &[name, bytes] : app.memoryBreakdown()) {
            std::printf("  %-26s %6.2f GiB\n", name.c_str(),
                        static_cast<double>(bytes)
                            / static_cast<double>(giB));
            std::printf("fig10mem,%s,%llu\n", name.c_str(),
                        (unsigned long long)bytes);
        }
    }
    bench::note("paper: visible tail-latency gap for compose-post "
                "(database-heavy); little to none for read-user-"
                "timeline (nginx-dominated); mixed workload saturates "
                "at a similar point for both placements");
    return 0;
}
