/**
 * @file
 * Table 1 reproduction: the simulated testbed configurations.
 */

#include "bench_common.hh"
#include "system/machine.hh"

using namespace cxlmemo;

int
main()
{
    bench::banner("Table 1", "Testbed configurations");
    for (Testbed tb : {Testbed::SingleSocketCxl, Testbed::DualSocket,
                       Testbed::SncQuadrantCxl}) {
        Machine m(tb);
        std::printf("%s\n", m.configString().c_str());
    }
    return 0;
}
