/**
 * @file
 * Pool guardrail: measures what the multi-host pooling machinery
 * costs when its robustness features are armed but nothing fails
 * (credit pools sized above the in-flight demand, a fast fence
 * checker, the watchdog), checks that the disabled path stays
 * deterministic, and records one full pool drill (aggressor flood +
 * host crash + fencing + capacity re-grant) on the classic and the
 * parallel engine. Writes the measurements to BENCH_pool.json.
 *
 * Exits nonzero when the armed-but-idle overhead exceeds the 5%
 * budget, when the disabled path is nondeterministic, or when a drill
 * run violates the ledger or blast-radius invariants.
 *
 *   bench_pool [--reps N] [--out BENCH_pool.json]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "system/cluster.hh"

namespace
{

using namespace cxlmemo;

constexpr double kOverheadBudgetPct = 5.0;

PoolSpec
cleanSpec()
{
    PoolSpec sp;
    sp.hosts = 4;
    sp.ops = 20000;
    return sp;
}

/** Every robustness feature armed, nothing disturbed: credits sized
 *  above the per-class in-flight demand (mlp), a 4x faster fence
 *  checker, plus the watchdog via Cluster::Options. */
PoolSpec
armedSpec()
{
    PoolSpec sp = cleanSpec();
    sp.credits = 2 * sp.mlp;
    sp.fenceCheckNs = 500.0;
    return sp;
}

/** Functional fingerprint of a result (determinism checks). */
std::string
fingerprint(const ClusterResult &r)
{
    std::ostringstream os;
    for (const auto &h : r.hosts)
        os << h.host << ":" << h.digest.ops << ":" << std::hex
           << h.digest.valueHash << ":" << h.digest.ledgerHash << ":"
           << std::dec << h.fenced << ";";
    os << r.verdict << ";" << r.endTick;
    return os.str();
}

double
timeOne(const PoolSpec &sp, bool watchdog, ClusterResult &keep)
{
    Cluster::Options o;
    if (watchdog)
        o.watchdogUs = 100.0;
    const auto t0 = std::chrono::steady_clock::now();
    Cluster c(sp, o);
    keep = c.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

double
best(const PoolSpec &sp, bool watchdog, int reps, ClusterResult &keep)
{
    double s = 1e300;
    for (int i = 0; i < reps; ++i) {
        ClusterResult r;
        const double t = timeOne(sp, watchdog, r);
        if (t < s)
            s = t;
        keep = std::move(r); // deterministic; any rep will do
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cxlmemo;

    int reps = 3;
    std::string out = "BENCH_pool.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0)
            reps = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
    }

    bench::banner("BENCH pool",
                  "multi-host pooling overhead and drill datapoints");

    bool ok = true;

    // Disabled path: two identical clean runs must agree on every
    // functional outcome.
    ClusterResult offA, offB;
    timeOne(cleanSpec(), false, offA);
    timeOne(cleanSpec(), false, offB);
    const bool offIdentical = fingerprint(offA) == fingerprint(offB);
    std::printf("pool,disabled_identical,%d\n", offIdentical ? 1 : 0);
    if (!offIdentical) {
        std::fprintf(stderr, "FAIL: disabled path nondeterministic\n");
        ok = false;
    }

    // Armed-but-idle overhead: credits + fast fence checker +
    // watchdog, nothing fails. The functional outcome must not move
    // either -- idle robustness machinery observes, never perturbs.
    ClusterResult off, on;
    const double offS = best(cleanSpec(), false, reps, off);
    const double onS = best(armedSpec(), true, reps, on);
    const double overheadPct = (onS / offS - 1.0) * 100.0;
    std::printf("pool,disabled_ms,%.2f\n", offS * 1e3);
    std::printf("pool,armed_idle_ms,%.2f\n", onS * 1e3);
    std::printf("pool,armed_idle_overhead_pct,%.2f\n", overheadPct);
    if (overheadPct > kOverheadBudgetPct) {
        std::fprintf(stderr,
                     "FAIL: armed-but-idle overhead %.2f%% exceeds "
                     "the %.1f%% budget\n",
                     overheadPct, kOverheadBudgetPct);
        ok = false;
    }
    bool armedClean = true;
    for (std::size_t h = 0; h < off.hosts.size(); ++h)
        armedClean = armedClean
                     && off.hosts[h].digest == on.hosts[h].digest;
    std::printf("pool,armed_idle_digests_identical,%d\n",
                armedClean ? 1 : 0);
    if (!armedClean) {
        std::fprintf(stderr,
                     "FAIL: idle robustness machinery changed a "
                     "host digest\n");
        ok = false;
    }

    // Full drill (crash + aggressor + credits + poison) per engine.
    std::string err;
    const auto drill = PoolSpec::parse(
        "hosts=4,ops=8000,crash-host=1,crash-at-ns=40000,aggressor=3,"
        "credits=16,poison-host=2,poison-every=97",
        err);
    if (!drill) {
        std::fprintf(stderr, "bad drill spec: %s\n", err.c_str());
        return 1;
    }
    struct DrillRow
    {
        std::uint32_t simThreads;
        double seconds;
        memo::PoolResult r;
    };
    std::vector<DrillRow> drills;
    for (std::uint32_t t : {0u, 1u, 8u}) {
        DrillRow row;
        row.simThreads = t;
        memo::Options opts;
        opts.simThreads = t;
        const auto t0 = std::chrono::steady_clock::now();
        row.r = memo::runPool(*drill, opts);
        const auto t1 = std::chrono::steady_clock::now();
        row.seconds = std::chrono::duration<double>(t1 - t0).count();
        const auto &c = row.r.cluster;
        std::printf("pool,drill_t%u_time_to_fence_ns,%.1f\n", t,
                    c.timeToFenceNs);
        std::printf("pool,drill_t%u_quarantined_mb,%llu\n", t,
                    static_cast<unsigned long long>(
                        c.quarantinedBytes / miB));
        std::printf("pool,drill_t%u_recovered_mb,%llu\n", t,
                    static_cast<unsigned long long>(
                        c.recoveredBytes / miB));
        std::printf("pool,drill_t%u_ledger_ok,%d\n", t,
                    c.ledgerOk ? 1 : 0);
        std::printf("pool,drill_t%u_isolation_ok,%d\n", t,
                    row.r.isolationOk ? 1 : 0);
        if (!c.ledgerOk || !row.r.isolationOk || c.watchdogTripped) {
            std::fprintf(stderr,
                         "FAIL: drill sim-threads=%u violates an "
                         "invariant (ledger=%d isolation=%d)\n",
                         t, c.ledgerOk ? 1 : 0,
                         row.r.isolationOk ? 1 : 0);
            ok = false;
        }
        drills.push_back(std::move(row));
    }
    // Every parallel thread count must produce the same execution.
    // (The classic engine is a different engine: its same-tick
    // arrival interleaving may legitimately differ, so it is held to
    // the invariants above, not to byte-equality with parallel.)
    if (fingerprint(drills[1].r.cluster)
        != fingerprint(drills[2].r.cluster)) {
        std::fprintf(stderr,
                     "FAIL: parallel drills disagree across "
                     "thread counts\n");
        ok = false;
    }

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"pool\",\n"
            "  \"workload\": \"%s\",\n"
            "  \"reps\": %d,\n"
            "  \"disabled_ms\": %.3f,\n"
            "  \"armed_idle_ms\": %.3f,\n"
            "  \"armed_idle_overhead_pct\": %.3f,\n"
            "  \"overhead_budget_pct\": %.1f,\n"
            "  \"disabled_identical\": %s,\n"
            "  \"armed_idle_digests_identical\": %s,\n"
            "  \"drills\": [",
            cleanSpec().toString().c_str(), reps, offS * 1e3,
            onS * 1e3, overheadPct, kOverheadBudgetPct,
            offIdentical ? "true" : "false",
            armedClean ? "true" : "false");
        for (std::size_t i = 0; i < drills.size(); ++i) {
            const DrillRow &r = drills[i];
            const auto &c = r.r.cluster;
            std::fprintf(
                f,
                "%s\n    {\"sim_threads\": %u, \"ms\": %.3f, "
                "\"time_to_fence_ns\": %.1f, "
                "\"quarantined_bytes\": %llu, "
                "\"recovered_bytes\": %llu, "
                "\"ledger_ok\": %s, \"isolation_ok\": %s, "
                "\"verdict\": \"%s\"}",
                i ? "," : "", r.simThreads, r.seconds * 1e3,
                c.timeToFenceNs,
                static_cast<unsigned long long>(c.quarantinedBytes),
                static_cast<unsigned long long>(c.recoveredBytes),
                c.ledgerOk ? "true" : "false",
                r.r.isolationOk ? "true" : "false",
                c.verdict.c_str());
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        bench::note(("wrote " + out).c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    if (ok)
        bench::note("pool guardrails hold: idle overhead in budget, "
                    "disabled path deterministic, ledgers conserved, "
                    "blast radius contained");
    return ok ? 0 : 1;
}
