/**
 * @file
 * Shared helpers for the figure-regeneration benchmark binaries: each
 * binary prints the rows/series of one table or figure of the paper,
 * in a machine-greppable format
 * (`<figure>,<series>,<x>,<value>` CSV plus a human-readable header).
 */

#ifndef CXLMEMO_BENCH_BENCH_COMMON_HH
#define CXLMEMO_BENCH_BENCH_COMMON_HH

#include <cstdio>

namespace cxlmemo
{
namespace bench
{

inline void
banner(const char *figure, const char *caption)
{
    std::printf("==========================================================\n");
    std::printf("%s: %s\n", figure, caption);
    std::printf("==========================================================\n");
}

inline void
note(const char *text)
{
    std::printf("-- %s\n", text);
}

} // namespace bench
} // namespace cxlmemo

#endif // CXLMEMO_BENCH_BENCH_COMMON_HH
