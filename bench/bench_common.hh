/**
 * @file
 * Shared helpers for the figure-regeneration benchmark binaries: each
 * binary prints the rows/series of one table or figure of the paper,
 * in a machine-greppable format
 * (`<figure>,<series>,<x>,<value>` CSV plus a human-readable header).
 */

#ifndef CXLMEMO_BENCH_BENCH_COMMON_HH
#define CXLMEMO_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cxlmemo
{
namespace bench
{

inline void
banner(const char *figure, const char *caption)
{
    std::printf("==========================================================\n");
    std::printf("%s: %s\n", figure, caption);
    std::printf("==========================================================\n");
}

inline void
note(const char *text)
{
    std::printf("-- %s\n", text);
}

/**
 * Parse `--jobs N` / `-j N` from a figure binary's argv (default 1,
 * 0 = one per hardware thread). The sweep output is identical for any
 * value; jobs only changes wall-clock time.
 */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0
            || std::strcmp(argv[i], "-j") == 0) {
            return static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
        }
    }
    return 1;
}

} // namespace bench
} // namespace cxlmemo

#endif // CXLMEMO_BENCH_BENCH_COMMON_HH
