/**
 * @file
 * Chaos guardrail: measures what the failure-lifecycle machinery costs
 * when it is armed but quiescent, checks that the disabled path stays
 * deterministic and free of chaos instrumentation, and records one
 * full drill (link down/retrain, hot-remove/re-add, page offlining)
 * per thread count. Writes the measurements to BENCH_chaos.json.
 *
 * Exits nonzero when the armed-but-idle overhead exceeds the 5%
 * budget, when the disabled path is nondeterministic, or when a drill
 * violates the poison-conservation invariant.
 *
 *   bench_chaos [--reps N] [--out BENCH_chaos.json]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "system/machine.hh"

namespace
{

using namespace cxlmemo;

constexpr std::uint32_t kWorkloadThreads = 8;
const std::vector<std::uint32_t> kDrillThreads = {1, 4};
constexpr double kOverheadBudgetPct = 5.0;

struct RunResult
{
    double seconds = 0.0;
    double gbps = 0.0;
    std::string stats;
};

/**
 * One fig. 3 read-bandwidth point. With `armed`, a full chaos schedule
 * is installed but every event lands far past the measurement horizon,
 * so the run measures the cost of the armed machinery (lifecycle
 * checks on the link hot path, the failure handler, the chaos stats)
 * without any failure actually firing.
 */
RunResult
runOnce(bool armed)
{
    memo::Options opts;
    // Guardrail windows: long enough for a stable reading, short
    // enough that the rep loop stays CI-sized.
    opts.warmupUs = 20.0;
    opts.measureUs = 80.0;
    if (armed) {
        opts.chaos.linkDownAtNs = 1000000000; // 1 s: never reached
        opts.chaos.removeAtNs = 1000000000;
        opts.chaos.readdAtNs = 1000000001;
        opts.chaos.crcBurstTrigger = 1000000;
        opts.chaos.offlineThreshold = 1000000;
    }
    RunResult r;
    opts.onMachineDone = [&r](Machine &m) { r.stats = m.statsString(); };
    const auto t0 = std::chrono::steady_clock::now();
    r.gbps = memo::runSeqBandwidth(memo::Target::Cxl, MemOp::Kind::Load,
                                   kWorkloadThreads, opts);
    const auto t1 = std::chrono::steady_clock::now();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

double
best(bool armed, int reps, RunResult &keep)
{
    double s = 1e300;
    for (int i = 0; i < reps; ++i) {
        RunResult r = runOnce(armed);
        if (r.seconds < s)
            s = r.seconds;
        keep = std::move(r); // results are deterministic; any rep will do
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cxlmemo;

    int reps = 3;
    std::string out = "BENCH_chaos.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0)
            reps = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
    }

    bench::banner("BENCH chaos",
                  "failure-lifecycle overhead and drill datapoints");

    bool ok = true;

    // Disabled path: two identical runs must agree byte-for-byte, and
    // the stats must carry no chaos instrumentation at all.
    RunResult offA = runOnce(false);
    RunResult offB = runOnce(false);
    const bool offIdentical =
        offA.gbps == offB.gbps && offA.stats == offB.stats;
    const bool offClean =
        offA.stats.find("chaos:") == std::string::npos;
    std::printf("chaos,disabled_identical,%d\n", offIdentical ? 1 : 0);
    std::printf("chaos,disabled_clean,%d\n", offClean ? 1 : 0);
    if (!offIdentical) {
        std::fprintf(stderr, "FAIL: disabled path nondeterministic\n");
        ok = false;
    }
    if (!offClean) {
        std::fprintf(stderr,
                     "FAIL: chaos counters leak into a disabled run\n");
        ok = false;
    }

    // Armed-but-idle overhead against the 5% budget.
    RunResult off, on;
    const double offS = best(false, reps, off);
    const double onS = best(true, reps, on);
    const double overheadPct = (onS / offS - 1.0) * 100.0;
    std::printf("chaos,disabled_ms,%.2f\n", offS * 1e3);
    std::printf("chaos,armed_idle_ms,%.2f\n", onS * 1e3);
    std::printf("chaos,armed_idle_overhead_pct,%.2f\n", overheadPct);
    if (overheadPct > kOverheadBudgetPct) {
        std::fprintf(stderr,
                     "FAIL: armed-but-idle overhead %.2f%% exceeds "
                     "the %.1f%% budget\n",
                     overheadPct, kOverheadBudgetPct);
        ok = false;
    }

    // Full drills: one per thread count, invariant enforced.
    struct DrillRow
    {
        std::uint32_t threads;
        memo::DrillResult d;
    };
    std::vector<DrillRow> drills;
    for (std::uint32_t t : kDrillThreads) {
        DrillRow row;
        row.threads = t;
        row.d = memo::runDrill(t);
        std::printf("chaos,drill_%u_healthy_gbps,%.2f\n", t,
                    row.d.healthyGBps);
        std::printf("chaos,drill_%u_degraded_gbps,%.2f\n", t,
                    row.d.degradedGBps);
        std::printf("chaos,drill_%u_recovered_gbps,%.2f\n", t,
                    row.d.recoveredGBps);
        std::printf("chaos,drill_%u_link_mttr_ns,%.1f\n", t,
                    row.d.linkMttrNs);
        std::printf("chaos,drill_%u_remove_mttr_ns,%.1f\n", t,
                    row.d.removeMttrNs);
        std::printf("chaos,drill_%u_data_at_risk_bytes,%llu\n", t,
                    static_cast<unsigned long long>(
                        row.d.chaos.dataAtRiskBytes));
        std::printf("chaos,drill_%u_invariant_ok,%d\n", t,
                    row.d.invariantOk ? 1 : 0);
        if (!row.d.invariantOk) {
            std::fprintf(stderr,
                         "FAIL: drill threads=%u violates the poison "
                         "conservation invariant\n",
                         t);
            ok = false;
        }
        if (row.d.degradedGBps >= row.d.healthyGBps) {
            std::fprintf(stderr,
                         "FAIL: drill threads=%u shows no degradation "
                         "(healthy %.2f <= degraded %.2f GB/s)\n",
                         t, row.d.healthyGBps, row.d.degradedGBps);
            ok = false;
        }
        drills.push_back(std::move(row));
    }

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"chaos\",\n"
            "  \"workload\": \"seq cxl load threads=%u\",\n"
            "  \"reps\": %d,\n"
            "  \"disabled_ms\": %.3f,\n"
            "  \"armed_idle_ms\": %.3f,\n"
            "  \"armed_idle_overhead_pct\": %.3f,\n"
            "  \"overhead_budget_pct\": %.1f,\n"
            "  \"disabled_identical\": %s,\n"
            "  \"disabled_clean\": %s,\n"
            "  \"drills\": [",
            kWorkloadThreads, reps, offS * 1e3, onS * 1e3, overheadPct,
            kOverheadBudgetPct, offIdentical ? "true" : "false",
            offClean ? "true" : "false");
        for (std::size_t i = 0; i < drills.size(); ++i) {
            const DrillRow &r = drills[i];
            std::fprintf(
                f,
                "%s\n    {\"threads\": %u, \"healthy_gbps\": %.3f, "
                "\"degraded_gbps\": %.3f, \"recovered_gbps\": %.3f, "
                "\"link_detect_ns\": %.1f, \"link_mttr_ns\": %.1f, "
                "\"remove_detect_ns\": %.1f, \"remove_mttr_ns\": %.1f, "
                "\"data_at_risk_bytes\": %llu, "
                "\"evacuated_bytes\": %llu, "
                "\"pages_offlined\": %llu, "
                "\"invariant_ok\": %s}",
                i ? "," : "", r.threads, r.d.healthyGBps,
                r.d.degradedGBps, r.d.recoveredGBps, r.d.linkDetectNs,
                r.d.linkMttrNs, r.d.removeDetectNs, r.d.removeMttrNs,
                static_cast<unsigned long long>(
                    r.d.chaos.dataAtRiskBytes),
                static_cast<unsigned long long>(r.d.evacuatedBytes),
                static_cast<unsigned long long>(
                    r.d.chaos.pagesOfflined),
                r.d.invariantOk ? "true" : "false");
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        bench::note(("wrote " + out).c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    if (ok)
        bench::note("chaos guardrails hold: idle overhead in budget, "
                    "disabled path clean, invariants intact");
    return ok ? 0 : 1;
}
