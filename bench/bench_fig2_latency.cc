/**
 * @file
 * Figure 2 reproduction: access latency per instruction type
 * (AVX-512 load after flush, temporal store + clwb, non-temporal
 * store + sfence, sequential pointer chase) on DDR5-L8, DDR5-R1 and
 * CXL memory, plus the pointer-chase working-set-size sweep that
 * crosses the cache hierarchy. Prefetching is disabled throughout,
 * as in the paper.
 */

#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"

using namespace cxlmemo;

int
main()
{
    bench::banner("Figure 2",
                  "Access latency (ns): ld / st+wb / nt-st / ptr-chase");

    std::printf("%-10s %10s %10s %10s %12s\n", "series", "ld", "st+wb",
                "nt-st", "ptr-chase");
    memo::LatencyResult local{};
    memo::LatencyResult cxl{};
    for (auto target : {memo::Target::Ddr5Local, memo::Target::Ddr5Remote,
                        memo::Target::Cxl}) {
        const memo::LatencyResult r = memo::runLatency(target);
        if (target == memo::Target::Ddr5Local)
            local = r;
        if (target == memo::Target::Cxl)
            cxl = r;
        std::printf("%-10s %10.1f %10.1f %10.1f %12.1f\n",
                    memo::targetName(target), r.loadNs, r.storeWbNs,
                    r.ntStoreNs, r.ptrChaseNs);
        std::printf("fig2,%s,ld,%.1f\n", memo::targetName(target),
                    r.loadNs);
        std::printf("fig2,%s,st+wb,%.1f\n", memo::targetName(target),
                    r.storeWbNs);
        std::printf("fig2,%s,nt-st,%.1f\n", memo::targetName(target),
                    r.ntStoreNs);
        std::printf("fig2,%s,ptr-chase,%.1f\n", memo::targetName(target),
                    r.ptrChaseNs);
    }
    std::printf("\n");
    bench::note("paper: CXL ld ~2.2x DDR5-L8; CXL ptr-chase ~3.7x "
                "DDR5-L8 and ~2.2x DDR5-R1; nt-st far below st+wb");
    std::printf("measured ratios: ld %.2fx, ptr-chase %.2fx (vs L8)\n\n",
                cxl.loadNs / local.loadNs,
                cxl.ptrChaseNs / local.ptrChaseNs);

    bench::banner("Figure 2 (right)",
                  "Pointer-chase latency vs working-set size (ns)");
    const std::vector<std::uint64_t> wss = {
        16 * kiB,  32 * kiB,  256 * kiB, 1 * miB,  4 * miB,
        16 * miB,  48 * miB,  128 * miB, 512 * miB,
    };
    std::printf("%-10s", "wss");
    for (std::uint64_t w : wss) {
        if (w < miB)
            std::printf(" %7lluK", (unsigned long long)(w / kiB));
        else
            std::printf(" %7lluM", (unsigned long long)(w / miB));
    }
    std::printf("\n");
    for (auto target : {memo::Target::Ddr5Local, memo::Target::Ddr5Remote,
                        memo::Target::Cxl}) {
        const auto lat = memo::runPtrChaseWssSweep(target, wss);
        std::printf("%-10s", memo::targetName(target));
        for (double v : lat)
            std::printf(" %8.1f", v);
        std::printf("\n");
        for (std::size_t i = 0; i < wss.size(); ++i) {
            std::printf("fig2wss,%s,%llu,%.1f\n",
                        memo::targetName(target),
                        (unsigned long long)wss[i], lat[i]);
        }
    }
    bench::note("expect: flat L1/L2/LLC plateaus, then the per-target "
                "memory latency once WSS exceeds the 60 MiB LLC");
    return 0;
}
