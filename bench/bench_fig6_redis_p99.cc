/**
 * @file
 * Figure 6 reproduction: Redis p99 tail latency under YCSB workload A
 * (50% read / 50% update, uniform keys) while throttling the offered
 * QPS, with the store's memory 0% / 50% / 100% on CXL.
 */

#include <vector>

#include "apps/kvstore/kvstore.hh"
#include "bench_common.hh"

using namespace cxlmemo;
using namespace cxlmemo::kv;

int
main()
{
    bench::banner("Figure 6",
                  "Redis p99 latency (us) vs QPS, YCSB workload A");

    const std::vector<double> qps = {10e3, 20e3, 30e3, 40e3, 50e3,
                                     55e3, 60e3, 65e3, 70e3, 80e3};
    struct Series
    {
        double frac;
        const char *name;
    };
    const Series series[] = {
        {0.0, "dram"},
        {0.5, "cxl-50%"},
        {1.0, "cxl-100%"},
    };

    std::printf("%-12s %10s %10s %10s %10s\n", "series", "qps",
                "p99-read", "p99-upd", "achieved");
    for (const Series &s : series) {
        for (double q : qps) {
            const KvRunResult r =
                runYcsb(YcsbWorkload::a(), s.frac, q, 0.4);
            // Past saturation the queue grows without bound; cap the
            // sweep per series once the server falls behind by >3%.
            std::printf("%-12s %10.0f %10.1f %10.1f %10.0f\n", s.name,
                        q, r.p99ReadUs, r.p99UpdateUs, r.achievedQps);
            std::printf("fig6,%s,%.0f,%.1f,%.1f\n", s.name, q,
                        r.p99ReadUs, r.p99UpdateUs);
            if (r.achievedQps < 0.9 * q) {
                std::printf("%-12s (saturated; stopping sweep)\n",
                            s.name);
                break;
            }
        }
    }
    bench::note("paper: constant p99 gap between CXL and DRAM until "
                "~55 kQPS where 100%-CXL saturates; 50% saturates "
                "~65 kQPS; DRAM ~80 kQPS");
    return 0;
}
