/**
 * @file
 * Ablation studies for the modeling decisions called out in
 * DESIGN.md: each section removes or varies one mechanism and shows
 * which paper observation breaks without it.
 *
 *  A1. FPGA scheduler depth (FR-FCFS scan/hit-run) -> CXL load
 *      degradation beyond ~12 threads (Fig. 3b)
 *  A2. Controller write-buffer size -> nt-store collapse (Fig. 3b/5)
 *  A3. Posted-write acceptance -> NT stores pipelining past their
 *      round-trip latency (Sec. 4.2 vs 4.3 reconciliation)
 *  A4. Flushed-line handshake -> flush+load probe vs pointer chase
 *      (Fig. 2)
 *  A5. OS frame scattering -> without it, thread buffers run in bank
 *      lockstep and every multi-threaded curve collapses
 *  A6. DTLB page walks -> the 1 KiB random-block penalty (Fig. 5)
 */

#include <cstdio>

#include "bench_common.hh"
#include "cpu/streams.hh"
#include "memo/memo.hh"
#include "system/machine.hh"

using namespace cxlmemo;

namespace
{

/** Sequential-load bandwidth on the CXL node of a custom machine. */
double
cxlSeqLoad(Machine &m, std::uint32_t threads)
{
    NumaBuffer buf = m.numa().alloc(std::uint64_t(threads) * 128 * miB,
                                    MemPolicy::membind(m.cxlNode()));
    std::vector<std::unique_ptr<HwThread>> pool;
    for (std::uint32_t t = 0; t < threads; ++t) {
        pool.push_back(m.makeThread(static_cast<std::uint16_t>(t)));
        pool.back()->start(
            std::make_unique<SequentialStream>(
                buf, std::uint64_t(t) * 128 * miB, 128 * miB,
                std::uint64_t(1) << 42, MemOp::Kind::Load),
            m.eq().curTick(), nullptr);
    }
    m.eq().runUntil(m.eq().curTick() + ticksFromUs(30));
    std::uint64_t before = 0;
    for (auto &t : pool)
        before += t->stats().bytesRead;
    m.eq().runUntil(m.eq().curTick() + ticksFromUs(120));
    std::uint64_t after = 0;
    for (auto &t : pool)
        after += t->stats().bytesRead;
    return gbPerSec(after - before, ticksFromUs(120));
}

MachineOptions
withCxl(CxlDeviceParams p)
{
    MachineOptions o;
    o.cxlDevice = std::move(p);
    return o;
}

} // namespace

int
main()
{
    bench::banner("Ablations", "which mechanism produces which shape");

    // A1: deepen the FPGA scheduler to iMC-grade.
    {
        std::printf("[A1] CXL load GB/s vs threads, FPGA scheduler "
                    "(scan 6 / run 8) vs iMC-grade (16/16)\n");
        for (bool deep : {false, true}) {
            CxlDeviceParams p = testbed_params::agilexCxlDevice();
            if (deep) {
                p.backend.scanDepth = 16;
                p.backend.maxHitRun = 16;
                p.backend.tBankCycle = ticksFromNs(48.0);
            }
            std::printf("  %-10s", deep ? "imc-grade" : "fpga");
            for (std::uint32_t t : {8u, 16u, 32u}) {
                Machine m(Testbed::SingleSocketCxl, withCxl(p));
                std::printf("  %u-thr %5.1f", t, cxlSeqLoad(m, t));
            }
            std::printf("\n");
        }
        bench::note("the shallow scheduler is what loses row locality "
                    "beyond ~12 threads (paper's 16.8 GB/s drop)");
    }

    // A2: write-buffer size vs nt-store collapse.
    {
        std::printf("\n[A2] CXL nt-store GB/s @16 threads vs "
                    "controller write buffer\n");
        for (std::uint32_t entries : {8u, 24u, 40u, 128u, 1024u}) {
            CxlDeviceParams p = testbed_params::agilexCxlDevice();
            p.writeBufferEntries = entries;
            Machine m(Testbed::SingleSocketCxl, withCxl(p));
            NumaBuffer buf =
                m.numa().alloc(16ull * 128 * miB,
                               MemPolicy::membind(m.cxlNode()));
            std::vector<std::unique_ptr<HwThread>> pool;
            for (std::uint32_t t = 0; t < 16; ++t) {
                pool.push_back(m.makeThread(t));
                pool.back()->start(
                    std::make_unique<SequentialStream>(
                        buf, std::uint64_t(t) * 128 * miB, 128 * miB,
                        std::uint64_t(1) << 42, MemOp::Kind::NtStore),
                    0, nullptr);
            }
            m.eq().runUntil(ticksFromUs(30));
            std::uint64_t before = 0;
            for (auto &t : pool)
                before += t->stats().bytesWritten;
            m.eq().runUntil(ticksFromUs(150));
            std::uint64_t after = 0;
            for (auto &t : pool)
                after += t->stats().bytesWritten;
            std::printf("  %4u entries: %5.1f GB/s\n", entries,
                        gbPerSec(after - before, ticksFromUs(120)));
        }
        bench::note("a small FPGA write buffer fragments per-stream "
                    "runs -> the many-writer collapse the paper blames "
                    "on buffer overflow");
    }

    // A4: flush handshake.
    {
        std::printf("\n[A4] flush+load probe vs handshake penalty "
                    "(DDR5-L8)\n");
        const auto with = memo::runLatency(memo::Target::Ddr5Local);
        std::printf("  with handshake: ld %.1f ns vs ptr-chase %.1f ns "
                    "(ratio %.2f)\n",
                    with.loadNs, with.ptrChaseNs,
                    with.loadNs / with.ptrChaseNs);
        bench::note("without the handshake the probe would equal the "
                    "chase latency and the paper's 2.2x CXL/L8 ld "
                    "ratio could not coexist with the 3.7x chase ratio");
    }

    // A5: frame scattering.
    {
        std::printf("\n[A5] DDR5-L8 16-thread sequential load with/"
                    "without OS frame scattering\n");
        for (bool scatter : {true, false}) {
            Machine m(Testbed::SingleSocketCxl);
            m.numa().setScatterFrames(m.localNode(), scatter);
            NumaBuffer buf =
                m.numa().alloc(16ull * 128 * miB,
                               MemPolicy::membind(m.localNode()));
            std::vector<std::unique_ptr<HwThread>> pool;
            for (std::uint32_t t = 0; t < 16; ++t) {
                pool.push_back(m.makeThread(t));
                pool.back()->start(
                    std::make_unique<SequentialStream>(
                        buf, std::uint64_t(t) * 128 * miB, 128 * miB,
                        std::uint64_t(1) << 42, MemOp::Kind::Load),
                    0, nullptr);
            }
            m.eq().runUntil(ticksFromUs(30));
            std::uint64_t before = 0;
            for (auto &t : pool)
                before += t->stats().bytesRead;
            m.eq().runUntil(ticksFromUs(150));
            std::uint64_t after = 0;
            for (auto &t : pool)
                after += t->stats().bytesRead;
            std::printf("  scatter=%-5s %6.1f GB/s\n",
                        scatter ? "on" : "off",
                        gbPerSec(after - before, ticksFromUs(120)));
        }
        bench::note("contiguous frames put every thread's stream in "
                    "bank lockstep -- a pathology real allocators "
                    "never exhibit");
    }

    // A6: TLB and small random blocks.
    {
        std::printf("\n[A6] random 1 KiB vs 64 KiB block loads "
                    "(DDR5-L8, 8 threads) with/without DTLB\n");
        for (bool tlb : {false, true}) {
            for (std::uint64_t blk : {1 * kiB, 64 * kiB}) {
                MachineOptions o;
                o.tlbEnabled = tlb;
                Machine m(Testbed::SingleSocketCxl, o);
                NumaBuffer buf = m.numa().alloc(
                    8ull * 128 * miB, MemPolicy::membind(m.localNode()));
                std::vector<std::unique_ptr<HwThread>> pool;
                for (std::uint32_t t = 0; t < 8; ++t) {
                    pool.push_back(m.makeThread(t));
                    pool.back()->start(
                        std::make_unique<RandomBlockStream>(
                            buf, std::uint64_t(t) * 128 * miB, 128 * miB,
                            std::uint64_t(1) << 42, blk,
                            MemOp::Kind::Load, false, 7 + t),
                        0, nullptr);
                }
                m.eq().runUntil(ticksFromUs(30));
                std::uint64_t before = 0;
                for (auto &t : pool)
                    before += t->stats().bytesRead;
                m.eq().runUntil(ticksFromUs(150));
                std::uint64_t after = 0;
                for (auto &t : pool)
                    after += t->stats().bytesRead;
                std::printf("  tlb=%-3s blk=%2lluKiB: %6.1f GB/s\n",
                            tlb ? "on" : "off",
                            (unsigned long long)(blk / kiB),
                            gbPerSec(after - before, ticksFromUs(120)));
            }
        }
        bench::note("page walks are the real-hardware reason 1 KiB "
                    "random blocks 'suffer equally' in the paper; the "
                    "TLB model is optional and off in the headline "
                    "figures");
    }

    return 0;
}
