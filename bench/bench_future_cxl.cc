/**
 * @file
 * Forward-looking exploration the paper sketches in Secs. 4.2/5.1/5.2:
 * "we anticipate that an ASIC implementation ... will result in
 * improved latency" and "CXL devices will have a bandwidth that is
 * comparable to native DRAM". This bench swaps the Agilex-I FPGA
 * device for hypothetical ASIC-class devices and re-runs the
 * latency-bound (Redis) and bandwidth-bound (DLRM) probes.
 */

#include <cstdio>
#include <functional>

#include "apps/dlrm/dlrm.hh"
#include "apps/kvstore/kvstore.hh"
#include "bench_common.hh"
#include "cpu/streams.hh"
#include "memo/memo.hh"
#include "system/machine.hh"

using namespace cxlmemo;

namespace
{

/** ASIC controller: shallow pipeline, iMC-grade scheduler. */
CxlDeviceParams
asicDevice(std::uint32_t channels, double chanGBps)
{
    CxlDeviceParams p = testbed_params::agilexCxlDevice();
    p.name = "cxl-asic";
    p.controllerIngress = ticksFromNs(20.0);
    p.controllerEgress = ticksFromNs(20.0);
    p.readQueueEntries = 96;
    p.writeBufferEntries = 128;
    p.backendChannels = channels;
    p.backend = testbed_params::localDdr5Channel();
    p.backend.name = "asic-ddr5";
    p.backend.peakGBps = chanGBps;
    return p;
}

struct DeviceSpec
{
    const char *name;
    MachineOptions opts;
};

} // namespace

int
main()
{
    bench::banner("Future CXL",
                  "FPGA device today vs hypothetical ASIC devices");

    std::vector<DeviceSpec> specs;
    specs.push_back({"agilex-fpga (today)", MachineOptions{}});
    {
        MachineOptions o;
        o.cxlDevice = asicDevice(1, 38.4);
        specs.push_back({"asic 1x DDR5 ch", o});
    }
    {
        MachineOptions o;
        o.cxlDevice = asicDevice(2, 38.4);
        specs.push_back({"asic 2x DDR5 ch", o});
    }

    std::printf("%-22s %12s %12s %14s %14s\n", "device",
                "ld lat (ns)", "8thr BW", "Redis maxQPS",
                "DLRM@32thr");
    for (const DeviceSpec &spec : specs) {
        // Latency: single dependent miss round trip.
        Machine lat_m(Testbed::SingleSocketCxl, spec.opts);
        NumaBuffer probe = lat_m.numa().alloc(
            256 * miB, MemPolicy::membind(lat_m.cxlNode()));
        auto chase = std::make_unique<PointerChaseStream>(
            probe, 256 * miB, 20000, false, 7);
        HwThread t(lat_m.caches(), 0, lat_m.coreParams());
        Tick s = 0;
        Tick e = 0;
        t.start(std::move(chase), 0, [&](Tick a, Tick b) {
            s = a;
            e = b;
        });
        lat_m.eq().run();
        const double lat_ns = nsFromTicks(e - s) / 20000.0;

        // Bandwidth: 8-thread sequential load.
        Machine bw_m(Testbed::SingleSocketCxl, spec.opts);
        NumaBuffer buf = bw_m.numa().alloc(
            8ull * 128 * miB, MemPolicy::membind(bw_m.cxlNode()));
        std::vector<std::unique_ptr<HwThread>> pool;
        for (std::uint32_t w = 0; w < 8; ++w) {
            pool.push_back(bw_m.makeThread(static_cast<std::uint16_t>(w)));
            pool.back()->start(
                std::make_unique<SequentialStream>(
                    buf, std::uint64_t(w) * 128 * miB, 128 * miB,
                    std::uint64_t(1) << 42, MemOp::Kind::Load),
                0, nullptr);
        }
        bw_m.eq().runUntil(ticksFromUs(30));
        std::uint64_t before = 0;
        for (auto &w : pool)
            before += w->stats().bytesRead;
        bw_m.eq().runUntil(ticksFromUs(150));
        std::uint64_t after = 0;
        for (auto &w : pool)
            after += w->stats().bytesRead;
        const double bw = gbPerSec(after - before, ticksFromUs(120));

        // Applications. (Fresh machines inside the helpers would use
        // the default device, so run them with explicit options.)
        // Redis: reuse the library helper by rebuilding its machine —
        // the helper always builds the default testbed, so inline a
        // capacity probe here instead.
        double redis_qps;
        {
            Machine m(Testbed::SingleSocketCxl, spec.opts);
            kv::KvStore store(m, kv::KvStoreParams{},
                              MemPolicy::membind(m.cxlNode()));
            kv::KvServer server(m, store, 0);
            kv::YcsbGenerator gen(kv::YcsbWorkload::a(),
                                  kv::KvStoreParams{}.numKeys,
                                  store.capacity(), 42);
            for (int i = 0; i < 2000; ++i)
                server.submit(gen.next());
            m.eq().run();
            const Tick t0 = m.eq().curTick();
            const Tick horizon = t0 + ticksFromSec(0.2);
            const std::uint64_t before_q = server.completed();
            std::function<void()> feed = [&] {
                while (server.queueDepth() < 16)
                    server.submit(gen.next());
                const Tick next = m.eq().curTick() + ticksFromUs(20);
                if (next < horizon)
                    m.eq().schedule(next, feed);
            };
            m.eq().schedule(t0, feed);
            m.eq().runUntil(horizon);
            redis_qps = (server.completed() - before_q) / 0.2;
        }

        double dlrm;
        {
            Machine m(Testbed::SingleSocketCxl, spec.opts);
            dlrm = dlrm::runInferenceThroughput(
                m, dlrm::DlrmParams{},
                MemPolicy::membind(m.cxlNode()), 32);
        }

        std::printf("%-22s %12.1f %12.1f %14.0f %14.0f\n", spec.name,
                    lat_ns, bw, redis_qps, dlrm);
    }
    bench::note("paper Sec. 4.2/5.1: ASIC latency lifts the "
                "latency-bound Redis; Sec. 5.2: DRAM-class bandwidth "
                "lifts the bandwidth-bound DLRM toward local-DRAM "
                "scaling");
    return 0;
}
