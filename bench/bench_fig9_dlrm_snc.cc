/**
 * @file
 * Figure 9 reproduction: DLRM embedding reduction confined to one
 * SNC quadrant (2 DDR5 channels + 15 MiB LLC slice) -- a memory-
 * bandwidth-bound configuration -- with partial CXL interleaving added.
 * The paper's headline: at 32 threads, putting 20% of the tables on
 * CXL memory raises throughput by ~11% over SNC-only.
 */

#include <vector>

#include "apps/dlrm/dlrm.hh"
#include "bench_common.hh"

using namespace cxlmemo;
using namespace cxlmemo::dlrm;

int
main()
{
    bench::banner("Figure 9",
                  "DLRM throughput under SNC (2 channels) + CXL");

    const std::vector<std::uint32_t> threads = {4, 8, 12, 16, 20,
                                                24, 28, 32};
    struct Series
    {
        double frac;
        const char *name;
    };
    const Series series[] = {
        {0.0, "snc-only"},
        {0.0323, "cxl-3.23%"},
        {0.1, "cxl-10%"},
        {0.2, "cxl-20%"},
        {0.5, "cxl-50%"},
    };

    std::printf("%-12s", "series\\thr");
    for (std::uint32_t t : threads)
        std::printf(" %8u", t);
    std::printf("\n");

    DlrmParams p;
    double snc32 = 0.0;
    double cxl20_32 = 0.0;
    for (const Series &s : series) {
        std::vector<double> row;
        for (std::uint32_t t : threads) {
            Machine m(Testbed::SncQuadrantCxl);
            row.push_back(runInferenceThroughput(
                m, p,
                MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(),
                                        s.frac),
                t));
        }
        if (s.frac == 0.0)
            snc32 = row.back();
        if (s.frac == 0.2)
            cxl20_32 = row.back();
        std::printf("%-12s", s.name);
        for (double v : row)
            std::printf(" %8.0f", v);
        std::printf("\n");
        for (std::size_t i = 0; i < threads.size(); ++i)
            std::printf("fig9,%s,%u,%.0f\n", s.name, threads[i], row[i]);
    }
    std::printf("\nAt 32 threads, 20%% on CXL vs SNC-only: %+.1f%%\n",
                (cxl20_32 / snc32 - 1.0) * 100.0);
    bench::note("paper: SNC stops scaling linearly after ~24 threads; "
                "interleaving to CXL then adds bandwidth, +11% at 32 "
                "threads with 20% on CXL");
    return 0;
}
