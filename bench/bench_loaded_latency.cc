/**
 * @file
 * Loaded-latency companion study (not a numbered paper figure, but
 * the canonical bandwidth-latency characterization that underlies the
 * paper's Sec. 4 narrative): a dependent-load probe measures average
 * access latency while an increasing number of background threads
 * stream loads from the same memory. Shows how quickly each target's
 * latency inflates as its bandwidth headroom vanishes -- the knee is
 * much earlier on the single-channel CXL/remote paths.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"

using namespace cxlmemo;

int
main()
{
    bench::banner("Loaded latency",
                  "probe latency (ns) vs background load threads");

    const std::vector<std::uint32_t> threads = {1, 2, 4, 8, 12, 16, 24};
    std::printf("%-10s", "target");
    for (std::uint32_t t : threads)
        std::printf(" %7u", t);
    std::printf("\n");
    for (auto target : {memo::Target::Ddr5Local, memo::Target::Ddr5Remote,
                        memo::Target::Cxl}) {
        std::vector<double> row;
        for (std::uint32_t t : threads)
            row.push_back(memo::runLoadedLatency(target, t));
        std::printf("%-10s", memo::targetName(target));
        for (double v : row)
            std::printf(" %7.1f", v);
        std::printf("\n");
        for (std::size_t i = 0; i < threads.size(); ++i)
            std::printf("loaded,%s,%u,%.1f\n",
                        memo::targetName(target), threads[i], row[i]);
    }
    bench::note("expect: DDR5-L8 stays near idle latency well past 16 "
                "threads; CXL/R1 inflate once their single channel "
                "saturates (~4-8 threads)");
    return 0;
}
