/**
 * @file
 * Attribution overhead guardrail: runs the fig. 3 read-bandwidth
 * workload with latency accounting off and on, checks the contract
 * (bit-identical simulated results, <5% wall-clock overhead, both
 * built-in invariants green), and writes the measurement to
 * BENCH_attrib.json. Exits nonzero on any violation, so CI can run it
 * as-is.
 *
 *   bench_attrib [--reps N] [--out BENCH_attrib.json]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "sim/attribution.hh"
#include "system/machine.hh"

namespace
{

using namespace cxlmemo;

const std::vector<std::uint32_t> kThreads = {8, 16, 24};

struct RunResult
{
    double seconds = 0.0;
    std::vector<double> gbps;
    AttribSnapshot snap;
};

RunResult
runOnce(bool attrib)
{
    memo::Options opts;
    opts.obs.attribution = attrib;
    RunResult r;
    if (attrib) {
        opts.onMachineDone = [&r](Machine &m) {
            r.snap.merge(m.attribution()->snapshot(m.eq().curTick()));
        };
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t threads : kThreads) {
        r.gbps.push_back(memo::runSeqBandwidth(
            memo::Target::Cxl, MemOp::Kind::Load, threads, opts));
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

double
best(bool attrib, int reps, RunResult &keep)
{
    double s = 1e300;
    for (int i = 0; i < reps; ++i) {
        RunResult r = runOnce(attrib);
        if (r.seconds < s) {
            s = r.seconds;
            keep = std::move(r);
        }
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cxlmemo;

    int reps = 3;
    std::string out = "BENCH_attrib.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0)
            reps = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
    }

    bench::banner("BENCH attrib",
                  "latency-accounting overhead on the fig. 3 workload");

    RunResult off, on;
    const double offS = best(false, reps, off);
    const double onS = best(true, reps, on);
    const double overheadPct = (onS / offS - 1.0) * 100.0;

    bool identical = off.gbps == on.gbps;
    const bool stackExact = on.snap.decompositionExact();
    const bool little = on.snap.littleOk();
    const bool overheadOk = overheadPct < 5.0;

    std::printf("attrib,off_ms,%.2f\n", offS * 1e3);
    std::printf("attrib,on_ms,%.2f\n", onS * 1e3);
    std::printf("attrib,overhead_pct,%.2f\n", overheadPct);
    std::printf("attrib,bit_identical,%d\n", identical ? 1 : 0);
    std::printf("attrib,stack_exact,%d\n", stackExact ? 1 : 0);
    std::printf("attrib,little_ok,%d\n", little ? 1 : 0);
    std::printf("attrib,verdict,%s\n", on.snap.verdict().c_str());

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"attrib_overhead\",\n"
                     "  \"workload\": \"seq cxl load threads=8,16,24\",\n"
                     "  \"reps\": %d,\n"
                     "  \"off_ms\": %.3f,\n"
                     "  \"on_ms\": %.3f,\n"
                     "  \"overhead_pct\": %.3f,\n"
                     "  \"budget_pct\": 5.0,\n"
                     "  \"bit_identical\": %s,\n"
                     "  \"stack_exact\": %s,\n"
                     "  \"little_ok\": %s,\n"
                     "  \"bottleneck\": \"%s\"\n"
                     "}\n",
                     reps, offS * 1e3, onS * 1e3, overheadPct,
                     identical ? "true" : "false",
                     stackExact ? "true" : "false",
                     little ? "true" : "false",
                     stationName(on.snap.bottleneck()));
        std::fclose(f);
        bench::note(("wrote " + out).c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: enabling attribution changed results\n");
        return 1;
    }
    if (!stackExact || !little) {
        std::fprintf(stderr, "FAIL: invariant violated (stack %d, "
                             "little %d)\n",
                     stackExact, little);
        return 1;
    }
    if (!overheadOk) {
        std::fprintf(stderr, "FAIL: overhead %.2f%% exceeds 5%%\n",
                     overheadPct);
        return 1;
    }
    bench::note("attribution contract holds");
    return 0;
}
