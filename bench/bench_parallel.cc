/**
 * @file
 * Parallel-engine guardrail: runs a 32-thread fig. 3 read-bandwidth
 * point under the classic single-queue engine and under the
 * domain-partitioned engine at several --sim-threads counts, checks
 * the determinism contract (byte-identical results and machine stats
 * at every worker count), measures the self-relative speedup
 * t(sim-threads=1) / t(sim-threads=N), and writes the measurement to
 * BENCH_parallel.json. Exits nonzero on a determinism violation;
 * speedup is recorded, not enforced, because it is a property of the
 * host (a CI box with one hardware thread cannot exhibit any).
 *
 *   bench_parallel [--reps N] [--out BENCH_parallel.json]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "system/machine.hh"

namespace
{

using namespace cxlmemo;

constexpr std::uint32_t kWorkloadThreads = 32;
const std::vector<std::uint32_t> kSimThreads = {1, 2, 8, 32};

struct RunResult
{
    double seconds = 0.0;
    double gbps = 0.0;
    std::string stats;
};

RunResult
runOnce(std::uint32_t simThreads)
{
    memo::Options opts;
    // Guardrail windows: long enough for a stable knee-point reading,
    // short enough that an oversubscribed worker sweep stays CI-sized.
    opts.warmupUs = 20.0;
    opts.measureUs = 80.0;
    opts.simThreads = simThreads;
    RunResult r;
    opts.onMachineDone = [&r](Machine &m) { r.stats = m.statsString(); };
    const auto t0 = std::chrono::steady_clock::now();
    r.gbps = memo::runSeqBandwidth(memo::Target::Cxl, MemOp::Kind::Load,
                                   kWorkloadThreads, opts);
    const auto t1 = std::chrono::steady_clock::now();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

double
best(std::uint32_t simThreads, int reps, RunResult &keep)
{
    double s = 1e300;
    for (int i = 0; i < reps; ++i) {
        RunResult r = runOnce(simThreads);
        if (r.seconds < s) {
            s = r.seconds;
            keep = std::move(r);
        }
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cxlmemo;

    int reps = 3;
    std::string out = "BENCH_parallel.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0)
            reps = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--out") == 0)
            out = argv[i + 1];
    }

    bench::banner("BENCH parallel",
                  "domain-partitioned engine on a 32-thread fig. 3 point");

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("parallel,hw_threads,%u\n", hw);

    RunResult off;
    const double offS = best(0, reps, off);
    std::printf("parallel,engine_off_ms,%.2f\n", offS * 1e3);

    std::vector<double> secs;
    std::vector<RunResult> runs;
    bool identical = true;
    for (std::uint32_t st : kSimThreads) {
        RunResult r;
        secs.push_back(best(st, reps, r));
        std::printf("parallel,sim_threads_%u_ms,%.2f\n", st,
                    secs.back() * 1e3);
        if (!runs.empty()
            && (r.gbps != runs.front().gbps
                || r.stats != runs.front().stats)) {
            identical = false;
            std::fprintf(stderr,
                         "FAIL: sim-threads=%u diverged from "
                         "sim-threads=%u\n",
                         st, kSimThreads.front());
        }
        runs.push_back(std::move(r));
    }

    const double overheadPct = (secs.front() / offS - 1.0) * 100.0;
    const double speedup = secs.front() / secs.back();
    std::printf("parallel,one_worker_overhead_pct,%.2f\n", overheadPct);
    std::printf("parallel,speedup_1_to_%u,%.3f\n", kSimThreads.back(),
                speedup);
    std::printf("parallel,byte_identical,%d\n", identical ? 1 : 0);

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"parallel_engine\",\n"
            "  \"workload\": \"seq cxl load threads=%u\",\n"
            "  \"reps\": %d,\n"
            "  \"hw_threads\": %u,\n"
            "  \"engine_off_ms\": %.3f,\n"
            "  \"sim_threads_ms\": {",
            kWorkloadThreads, reps, hw, offS * 1e3);
        for (std::size_t i = 0; i < kSimThreads.size(); ++i)
            std::fprintf(f, "%s\"%u\": %.3f",
                         i ? ", " : "", kSimThreads[i], secs[i] * 1e3);
        std::fprintf(
            f,
            "},\n"
            "  \"one_worker_overhead_pct\": %.3f,\n"
            "  \"self_relative_speedup\": %.4f,\n"
            "  \"speedup_target\": 4.0,\n"
            "  \"byte_identical\": %s,\n"
            "  \"note\": \"speedup is host-bound: with hw_threads=%u "
            "worker threads above that count oversubscribe and cannot "
            "help\"\n"
            "}\n",
            overheadPct, speedup, identical ? "true" : "false", hw);
        std::fclose(f);
        bench::note(("wrote " + out).c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: output depends on the worker count\n");
        return 1;
    }
    bench::note("determinism contract holds at every worker count");
    if (hw >= kSimThreads.back() && speedup < 4.0)
        std::fprintf(stderr,
                     "WARN: speedup %.2fx below the 4x target on a "
                     "%u-thread host\n",
                     speedup, hw);
    return 0;
}
