/**
 * @file
 * Figure 8 reproduction: DLRM embedding-reduction throughput vs
 * thread count for tables on 8-channel DDR5, CXL memory, remote
 * 1-channel DDR5, and DRAM:CXL weighted interleaves (3.23% and 50%
 * on CXL); plus throughput normalized to DRAM at 32 threads.
 */

#include <vector>

#include "apps/dlrm/dlrm.hh"
#include "bench_common.hh"

using namespace cxlmemo;
using namespace cxlmemo::dlrm;

namespace
{

double
point(const char *series, std::uint32_t threads)
{
    DlrmParams p;
    if (std::string(series) == "ddr5-r1") {
        Machine m(Testbed::DualSocket);
        return runInferenceThroughput(
            m, p, MemPolicy::membind(m.remoteNode()), threads);
    }
    double frac = 0.0;
    if (std::string(series) == "cxl")
        frac = 1.0;
    else if (std::string(series) == "cxl-3.23%")
        frac = 0.0323;
    else if (std::string(series) == "cxl-50%")
        frac = 0.5;
    Machine m(Testbed::SingleSocketCxl);
    return runInferenceThroughput(
        m, p, MemPolicy::splitDramCxl(m.localNode(), m.cxlNode(), frac),
        threads);
}

} // namespace

int
main()
{
    bench::banner("Figure 8",
                  "DLRM embedding-reduction throughput vs threads");

    const char *series[] = {"ddr5-l8", "cxl", "ddr5-r1", "cxl-3.23%",
                            "cxl-50%"};
    const std::vector<std::uint32_t> threads = {1, 2, 4, 8, 12, 16,
                                                20, 24, 28, 32};

    std::printf("%-12s", "series\\thr");
    for (std::uint32_t t : threads)
        std::printf(" %8u", t);
    std::printf("\n");

    double at32[5] = {};
    int idx = 0;
    for (const char *s : series) {
        std::vector<double> row;
        for (std::uint32_t t : threads)
            row.push_back(point(s, t));
        at32[idx++] = row.back();
        std::printf("%-12s", s);
        for (double v : row)
            std::printf(" %8.0f", v);
        std::printf("\n");
        for (std::size_t i = 0; i < threads.size(); ++i)
            std::printf("fig8,%s,%u,%.0f\n", s, threads[i], row[i]);
    }

    std::printf("\nNormalized to DDR5-L8 at 32 threads:\n");
    for (int i = 0; i < 5; ++i) {
        std::printf("  %-12s %.3f\n", series[i], at32[i] / at32[0]);
        std::printf("fig8norm,%s,%.3f\n", series[i], at32[i] / at32[0]);
    }
    bench::note("paper: DDR5-L8 scales linearly beyond 32 threads; CXL "
                "and R1 flatten early (random-bandwidth bound); less "
                "CXL interleave -> higher throughput, but even 3.23% "
                "does not beat pure DRAM");
    return 0;
}
