/**
 * @file
 * Overload-survival study: offered non-temporal store load vs achieved
 * CXL bandwidth and probe tail latency, with and without the QoS
 * machinery. Reproduces the paper's Sec. 4.3.2 observation that
 * nt-store floods past the saturation point *collapse* device
 * bandwidth (row-locality destruction at the DDR4 backend), then
 * shows that credit-based flow control plus DevLoad-driven AIMD
 * throttling turns the collapse into a graceful plateau.
 *
 * Every point runs with the forward-progress watchdog armed, so the
 * sweep doubles as a no-false-trip regression. The binary exits
 * nonzero if any acceptance check fails:
 *   - credit ledger intact at the end of every run
 *   - no watchdog trip anywhere
 *   - with AIMD, achieved bandwidth at every >= 2x-saturation point
 *     stays within 20% of the measured peak sustainable bandwidth
 *
 * `--quick` runs a reduced matrix (for CI smoke under sanitizers).
 * Each sweep point builds an independent Machine, so points run in
 * parallel under --jobs without changing any printed value.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "memo/memo.hh"
#include "sim/logging.hh"
#include "sim/qos.hh"
#include "sim/sweep.hh"

using namespace cxlmemo;

namespace
{

struct Config
{
    const char *name;
    const char *spec; //!< --qos-spec syntax; empty = QoS disabled
};

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Overload survival",
                  "offered nt-store load vs achieved CXL bandwidth "
                  "and probe p99, with and without QoS");

    const bool quick = hasFlag(argc, argv, "--quick");
    const std::vector<Config> configs = {
        {"none", ""},
        {"credits", "credits=24"},
        {"aimd", "credits=24,policy=aimd,floor=0.01,burst=12"},
    };
    const std::vector<std::uint32_t> threads =
        quick ? std::vector<std::uint32_t>{2, 8}
              : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 24, 32};

    const std::size_t points = configs.size() * threads.size();
    SweepRunner pool(bench::jobsFromArgs(argc, argv));
    const auto results = pool.map(points, [&](std::size_t i) {
        const Config &cfg = configs[i / threads.size()];
        memo::Options opts;
        if (cfg.spec[0] != '\0') {
            std::string err;
            const auto qos = QosSpec::parse(cfg.spec, err);
            if (!qos)
                CXLMEMO_PANIC("bad qos spec %s: %s", cfg.spec,
                              err.c_str());
            opts.qos = *qos;
        }
        // Watchdog armed everywhere: a healthy overload run must never
        // trip it, however congested the device gets.
        opts.watchdogUs = 100.0;
        return memo::runOverloadPoint(threads[i % threads.size()], opts);
    });

    // Peak sustainable = best achieved bandwidth with QoS off.
    double peak = 0.0;
    for (std::size_t i = 0; i < threads.size(); ++i)
        peak = std::max(peak, results[i].achievedGBps);

    std::printf("%-8s %8s %10s %11s %9s %7s %7s %7s\n", "config",
                "threads", "offered", "achieved", "p99-ns", "rate",
                "ledger", "wdog");
    bool ledger_ok = true;
    bool wdog_ok = true;
    for (std::size_t i = 0; i < points; ++i) {
        const Config &cfg = configs[i / threads.size()];
        const memo::OverloadResult &r = results[i];
        std::printf("%-8s %8u %8.2f %10.2f %9.0f %7.2f %7s %7s\n",
                    cfg.name, threads[i % threads.size()],
                    r.offeredGBps, r.achievedGBps, r.probeP99Ns,
                    r.qos.rate, r.qos.ledgerOk ? "ok" : "LEAK",
                    r.watchdogTripped ? "TRIP" : "ok");
        ledger_ok = ledger_ok && r.qos.ledgerOk;
        wdog_ok = wdog_ok && !r.watchdogTripped;
    }
    for (std::size_t i = 0; i < points; ++i) {
        const Config &cfg = configs[i / threads.size()];
        const memo::OverloadResult &r = results[i];
        std::printf("overload,%s,%u,%.2f,%.2f,%.0f,%.2f,%d\n",
                    cfg.name, threads[i % threads.size()],
                    r.offeredGBps, r.achievedGBps, r.probeP99Ns,
                    r.qos.rate, r.qos.ledgerOk ? 1 : 0);
    }

    // Acceptance: AIMD holds >= 80% of the sustainable peak at every
    // point whose offered load is at least twice that peak.
    const double need = 0.8 * peak;
    bool aimd_ok = true;
    const std::size_t aimd_base = 2 * threads.size();
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const memo::OverloadResult &r = results[aimd_base + i];
        if (r.offeredGBps < 2.0 * peak)
            continue;
        if (r.achievedGBps < need) {
            std::printf("FAIL: aimd @%u threads: %.2f GB/s < %.2f "
                        "(80%% of %.2f peak)\n",
                        threads[i], r.achievedGBps, need, peak);
            aimd_ok = false;
        }
    }
    if (!ledger_ok)
        std::printf("FAIL: credit ledger leak detected\n");
    if (!wdog_ok)
        std::printf("FAIL: watchdog tripped on a healthy run\n");

    bench::note("expect: without QoS, achieved bandwidth collapses "
                "once offered load passes saturation; with credits "
                "the floor rises; with AIMD the plateau holds within "
                "20% of peak and probe p99 stays bounded");
    if (ledger_ok && wdog_ok && aimd_ok) {
        std::printf("PASS: overload survival criteria met "
                    "(peak %.2f GB/s, floor %.2f GB/s)\n", peak, need);
        return 0;
    }
    return 1;
}
