/**
 * @file
 * Section 6 reproduction: "Best Practices for CXL memory". Each of
 * the paper's guidelines is verified by a measurement on the
 * simulated testbed, printed as guideline / evidence / verdict.
 */

#include <cstdio>

#include "apps/dlrm/dlrm.hh"
#include "apps/dsb/dsb.hh"
#include "apps/kvstore/kvstore.hh"
#include "bench_common.hh"
#include "memo/memo.hh"

using namespace cxlmemo;

namespace
{

void
verdict(const char *guideline, const char *evidence, bool holds)
{
    std::printf("[%s] %s\n    evidence: %s\n\n", holds ? "HOLDS" : "FAILS",
                guideline, evidence);
}

} // namespace

int
main()
{
    bench::banner("Section 6", "Best practices, verified by measurement");
    char buf[256];

    // 1. Use nt-store / movdir64B when moving data from/to CXL.
    {
        const double st = memo::runSeqBandwidth(memo::Target::Cxl,
                                                MemOp::Kind::Store, 2);
        const double nt = memo::runSeqBandwidth(memo::Target::Cxl,
                                                MemOp::Kind::NtStore, 2);
        std::snprintf(buf, sizeof(buf),
                      "2-thread CXL write: temporal %.1f GB/s vs "
                      "nt-store %.1f GB/s (%.1fx)",
                      st, nt, nt / st);
        verdict("use nt-store/movdir64B toward CXL memory", buf,
                nt > 1.5 * st);
    }

    // 2. Limit the number of threads writing to CXL concurrently.
    {
        const double nt2 = memo::runSeqBandwidth(memo::Target::Cxl,
                                                 MemOp::Kind::NtStore, 2);
        const double nt16 = memo::runSeqBandwidth(
            memo::Target::Cxl, MemOp::Kind::NtStore, 16);
        std::snprintf(buf, sizeof(buf),
                      "CXL nt-store: 2 threads %.1f GB/s, 16 threads "
                      "%.1f GB/s",
                      nt2, nt16);
        verdict("limit concurrent writers to CXL memory", buf,
                nt2 > nt16);
    }

    // 3. Use Intel DSA for bulk movement.
    {
        const double cpu = memo::runCopyBandwidth(
            memo::CopyPath::D2C, memo::CopyMethod::Movdir64);
        const double dsa = memo::runCopyBandwidth(
            memo::CopyPath::D2C, memo::CopyMethod::DsaAsync, 16);
        std::snprintf(buf, sizeof(buf),
                      "D2C bulk copy: best CPU method %.1f GB/s vs DSA "
                      "batched %.1f GB/s",
                      cpu, dsa);
        verdict("use Intel DSA for bulk movement", buf, dsa > 2 * cpu);
    }

    // 4. Interleave to spread bandwidth when DRAM is the bottleneck.
    {
        dlrm::DlrmParams p;
        Machine snc(Testbed::SncQuadrantCxl);
        const double only = dlrm::runInferenceThroughput(
            snc, p, MemPolicy::membind(snc.localNode()), 32);
        Machine mix(Testbed::SncQuadrantCxl);
        const double with20 = dlrm::runInferenceThroughput(
            mix, p,
            MemPolicy::splitDramCxl(mix.localNode(), mix.cxlNode(), 0.2),
            32);
        std::snprintf(buf, sizeof(buf),
                      "bandwidth-bound DLRM (SNC): %.0f -> %.0f inf/s "
                      "with 20%% on CXL (%+.1f%%)",
                      only, with20, (with20 / only - 1) * 100);
        verdict("interleave across DRAM+CXL to add bandwidth", buf,
                with20 > only);
    }

    // 5. Avoid running us-latency applications entirely on CXL.
    {
        const double dram =
            kv::maxSustainableQps(kv::YcsbWorkload::a(), 0.0, 0.15);
        const double cxl =
            kv::maxSustainableQps(kv::YcsbWorkload::a(), 1.0, 0.15);
        std::snprintf(buf, sizeof(buf),
                      "Redis max QPS: DRAM %.0f vs all-CXL %.0f "
                      "(-%.0f%%)",
                      dram, cxl, (1 - cxl / dram) * 100);
        verdict("keep us-latency databases off CXL", buf,
                cxl < 0.9 * dram);
    }

    // 6. Microservices are good offloading candidates.
    {
        const dsb::DsbRunResult ddr =
            dsb::runDsb(0.1, 0.3, 0.6, false, 4000, 0.5);
        const dsb::DsbRunResult cxl =
            dsb::runDsb(0.1, 0.3, 0.6, true, 4000, 0.5);
        std::snprintf(buf, sizeof(buf),
                      "mixed social network @4kQPS: read-user p99 "
                      "%.2f vs %.2f ms with DBs on CXL",
                      ddr.p99ReadUserMs, cxl.p99ReadUserMs);
        verdict("offload ms-latency microservice state to CXL", buf,
                cxl.p99ReadUserMs < 1.1 * ddr.p99ReadUserMs);
    }

    return 0;
}
